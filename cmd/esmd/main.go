// Command esmd is the energy-efficient storage management daemon: it
// consumes a logical I/O stream (CSV records on stdin, as produced by
// tracegen -format csv), feeds the monitoring system, runs the power
// management function at each monitoring-period end, and drives the
// simulated storage unit — printing a status line for every placement
// determination and a final energy report.
//
// It is the long-running-process form of the same machinery esmbench
// drives in batch: point a trace stream at it and watch the hot/cold
// split, cache assignments and monitoring period evolve.
//
// With -listen the daemon serves live observability over HTTP:
// /metrics (Prometheus text format), /status (JSON snapshot of the
// current period, hot mask, pattern mix and cache occupancy) and
// /debug/pprof. With -events it appends the typed telemetry event
// stream as JSON lines; esmstat -events renders a saved log. With
// -trace it records a per-I/O span trace and writes it as a
// Chrome/Perfetto trace-event JSON file on exit; the live latency
// breakdown and energy attribution then also appear in /status and
// /metrics, and esmstat latency/attrib render the saved file. With
// -series a flight recorder samples the whole system every
// -series-interval of simulated time and writes the series CSV on
// exit; with -listen the live series is also served on /series
// (JSON, ?format=csv, ?since=/?until= windowing).
//
// Usage:
//
//	tracegen -workload fileserver -scale 0.2 -format csv \
//	         -out /dev/stdout -catalog fs.items -placement fs.layout |
//	  esmd -catalog fs.items -placement fs.layout \
//	       -listen :9090 -events events.jsonl
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"esm/internal/config"
	"esm/internal/core"
	"esm/internal/faults"
	"esm/internal/metrics"
	"esm/internal/obs"
	"esm/internal/policy"
	"esm/internal/simclock"
	"esm/internal/storage"
	"esm/internal/trace"
)

func main() {
	catalogPath := flag.String("catalog", "", "catalog path (required)")
	placementPath := flag.String("placement", "", "initial-placement path (required)")
	enclosures := flag.Int("enclosures", 0, "enclosure count (0 = infer from placement)")
	quiet := flag.Bool("quiet", false, "suppress per-determination status lines")
	configPath := flag.String("config", "", "optional JSON config for storage and ESM parameters")
	listen := flag.String("listen", "", "serve /metrics, /status and /debug/pprof on this address")
	events := flag.String("events", "", "append the telemetry event stream to this JSONL file")
	tracePath := flag.String("trace", "", "write a Perfetto trace-event JSON file of every I/O and management span")
	seriesPath := flag.String("series", "", "sample a whole-system flight-recorder series, write it here as CSV on exit (also served live on /series)")
	seriesInterval := flag.Duration("series-interval", 30*time.Second, "flight-recorder sampling interval (simulated time)")
	faultSpec := flag.String("faults", "", "fault-injection scenario, e.g. seed=42,spinup=0.1,io=0.001,battery=10m:25m")
	flag.Parse()

	if *catalogPath == "" || *placementPath == "" {
		fmt.Fprintln(os.Stderr, "esmd: -catalog and -placement are required")
		os.Exit(2)
	}
	opts := daemonOpts{
		catalogPath:   *catalogPath,
		placementPath: *placementPath,
		configPath:    *configPath,
		enclosures:    *enclosures,
		quiet:         *quiet,
		listen:        *listen,
		eventsPath:    *events,
		tracePath:     *tracePath,
		seriesPath:    *seriesPath,
		seriesEvery:   *seriesInterval,
	}
	if *faultSpec != "" {
		fc, err := faults.ParseSpec(*faultSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "esmd: -faults:", err)
			os.Exit(2)
		}
		opts.faults = fc
	}
	if err := run(opts, os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "esmd:", err)
		os.Exit(1)
	}
}

type daemonOpts struct {
	catalogPath   string
	placementPath string
	configPath    string
	enclosures    int
	quiet         bool
	listen        string
	eventsPath    string
	tracePath     string
	seriesPath    string
	seriesEvery   time.Duration
	faults        *faults.Config
}

// daemon bundles the simulated storage unit, the policy and the
// telemetry state for one stream-processing run.
type daemon struct {
	opts daemonOpts
	out  io.Writer

	clk *simclock.Clock
	evq *simclock.EventQueue
	arr *storage.Array
	esm *core.ESM
	inj *faults.Injector

	enclosures int
	rec        *obs.Recorder
	trc        *obs.Tracer
	flight     *obs.FlightRecorder

	// mu guards snap against concurrent /status scrapes.
	mu   sync.Mutex
	snap statusSnapshot

	records int64
	lastDet int64
	resp    metrics.ResponseStats
}

// statusSnapshot is the JSON payload of /status.
type statusSnapshot struct {
	TimeNS         int64                  `json:"t_ns"`
	Records        int64                  `json:"records"`
	Determinations int64                  `json:"determinations"`
	Period         string                 `json:"period"`
	PeriodNS       int64                  `json:"period_ns"`
	HotMask        []bool                 `json:"hot_mask,omitempty"`
	PatternMix     map[string]int         `json:"pattern_mix,omitempty"`
	SpinUps        int                    `json:"spin_ups"`
	MigratedBytes  int64                  `json:"migrated_bytes"`
	CacheHits      int64                  `json:"cache_hits"`
	AvgEnclosureW  float64                `json:"avg_enclosure_w"`
	Cache          storage.CacheOccupancy `json:"cache"`
	Faults         int64                  `json:"faults,omitempty"`
	FailedIOs      int64                  `json:"failed_ios,omitempty"`
	Degraded       bool                   `json:"degraded,omitempty"`
	Degradations   int64                  `json:"degradations,omitempty"`
	Latency        *obs.LatencySummary    `json:"latency,omitempty"`
	Attribution    *obs.Attribution       `json:"attribution,omitempty"`
}

func run(opts daemonOpts, in io.Reader, out io.Writer) error {
	d, err := newDaemon(opts, out)
	if err != nil {
		return err
	}
	if d.rec != nil {
		defer d.rec.Close()
	}
	defer d.trc.Close()

	if opts.listen != "" {
		ln, err := net.Listen("tcp", opts.listen)
		if err != nil {
			return err
		}
		defer ln.Close()
		handler := obs.Handler(d.rec.Registry(), d.statusJSON, d.flight.Series)
		go http.Serve(ln, handler)
		fmt.Fprintf(out, "serving /metrics /status /series /debug/pprof on %v\n", ln.Addr())
	}

	if err := d.processStream(in); err != nil {
		return err
	}
	d.report()
	if opts.seriesPath != "" {
		if s := d.flight.Series(); s != nil {
			f, err := os.Create(opts.seriesPath)
			if err != nil {
				return err
			}
			if err := s.WriteCSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(out, "flight series (%d samples) written to %s\n", s.Len(), opts.seriesPath)
		}
	}
	if err := d.trc.Close(); err != nil {
		return err
	}
	if d.opts.tracePath != "" {
		fmt.Fprintf(out, "trace written to %s\n", d.opts.tracePath)
	}
	if d.rec != nil {
		return d.rec.Close()
	}
	return nil
}

func newDaemon(opts daemonOpts, out io.Writer) (*daemon, error) {
	cf, err := os.Open(opts.catalogPath)
	if err != nil {
		return nil, err
	}
	defer cf.Close()
	cat, err := trace.ReadCatalog(cf)
	if err != nil {
		return nil, err
	}
	pf, err := os.Open(opts.placementPath)
	if err != nil {
		return nil, err
	}
	defer pf.Close()
	placement, err := trace.ReadPlacement(pf)
	if err != nil {
		return nil, err
	}
	if len(placement) != cat.Len() {
		return nil, fmt.Errorf("placement covers %d of %d items", len(placement), cat.Len())
	}
	enclosures := opts.enclosures
	if enclosures == 0 {
		for _, e := range placement {
			if e+1 > enclosures {
				enclosures = e + 1
			}
		}
	}

	cfgFile, err := config.Load(opts.configPath)
	if err != nil {
		return nil, err
	}
	if cfgFile.Policy != nil && cfgFile.Policy.Name != "" && cfgFile.Policy.Name != "esm" {
		return nil, fmt.Errorf("esmd always runs the proposed method; policy %q is not supported here", cfgFile.Policy.Name)
	}
	storageCfg, err := cfgFile.BuildStorage(enclosures)
	if err != nil {
		return nil, err
	}

	// Telemetry is built whenever any observation surface is requested;
	// otherwise the recorder stays nil and the hot path pays one nil
	// check per instrumented site.
	var rec *obs.Recorder
	if opts.listen != "" || opts.eventsPath != "" {
		recOpts := obs.Options{Registry: obs.NewRegistry()}
		if opts.eventsPath != "" {
			f, err := os.Create(opts.eventsPath)
			if err != nil {
				return nil, err
			}
			recOpts.Sink = obs.NewJSONLSink(f)
		}
		rec = obs.New(recOpts)
	}
	var trc *obs.Tracer
	if opts.tracePath != "" {
		f, err := os.Create(opts.tracePath)
		if err != nil {
			return nil, err
		}
		trcOpts := obs.TracerOptions{
			Sink:       obs.NewPerfettoSink(f, "esmd"),
			Enclosures: enclosures,
		}
		if rec != nil {
			// Share the HTTP registry so the latency-percentile and
			// attribution gauges show up in /metrics scrapes.
			trcOpts.Registry = rec.Registry()
		}
		trc = obs.NewTracer(trcOpts)
	}

	clk := &simclock.Clock{}
	evq := &simclock.EventQueue{}
	arr, err := storage.New(storageCfg, clk, evq, cat)
	if err != nil {
		return nil, err
	}
	// The tracer attaches before placement so the energy ledger's
	// residency accounting sees every item land on its home enclosure.
	if trc != nil {
		arr.SetTracer(trc)
	}
	for item, enc := range placement {
		if err := arr.Place(trace.ItemID(item), enc); err != nil {
			return nil, err
		}
	}
	pol, err := cfgFile.BuildPolicy()
	if err != nil {
		return nil, err
	}
	esm, ok := pol.(*core.ESM)
	if !ok {
		return nil, fmt.Errorf("esmd requires the esm policy")
	}
	if rec != nil {
		arr.SetRecorder(rec)
		esm.SetRecorder(rec)
	}
	if trc != nil {
		esm.SetTracer(trc)
	}
	var flight *obs.FlightRecorder
	if opts.seriesPath != "" || opts.listen != "" {
		flight = obs.NewFlightRecorder(obs.FlightOptions{Interval: opts.seriesEvery})
		esm.SetFlightRecorder(flight)
	}
	var inj *faults.Injector
	if opts.faults != nil {
		inj, err = faults.NewInjector(*opts.faults)
		if err != nil {
			return nil, err
		}
		arr.SetFaultInjector(inj)
		arr.SetFaultObserver(esm.OnFault)
	}
	arr.SetPhysicalObserver(func(rec trace.PhysicalRecord) { esm.OnPhysical(rec) })
	arr.SetPowerObserver(func(e int, at time.Duration, on bool) { esm.OnPower(e, at, on) })
	// The stream length is unknown; give the policy a generous horizon.
	esm.Init(&policy.Context{Array: arr, Catalog: cat, Clock: clk, Queue: evq, End: 1000 * time.Hour})

	d := &daemon{
		opts:       opts,
		out:        out,
		clk:        clk,
		evq:        evq,
		arr:        arr,
		esm:        esm,
		inj:        inj,
		enclosures: enclosures,
		rec:        rec,
		trc:        trc,
		flight:     flight,
	}
	if flight != nil {
		// Self-rescheduling sampler on the simulated clock: the stream
		// loop's RunUntil fires every tick up to the current record's
		// time, so the series follows the stream at the configured
		// interval of simulated (not wall) time.
		every := opts.seriesEvery
		if every <= 0 {
			every = 30 * time.Second
		}
		var tick func(now time.Duration)
		tick = func(now time.Duration) {
			flight.Record(d.flightSample(now))
			evq.Schedule(now+every, tick)
		}
		flight.Record(d.flightSample(0))
		evq.Schedule(every, tick)
	}
	d.updateSnapshot(0)
	return d, nil
}

// flightSample assembles one whole-system snapshot at simulated time
// now (the daemon-side twin of the replay engine's sampler).
func (d *daemon) flightSample(now time.Duration) obs.FlightSample {
	d.arr.Finish()
	m := d.arr.Meter()
	occ := d.arr.CacheOccupancy()
	st := d.arr.Stats()
	s := obs.FlightSample{
		T:                 now,
		EnclosureEnergyJ:  m.EnclosureEnergyJ(),
		TotalEnergyJ:      m.TotalEnergyJ(now),
		SpinUps:           m.SpinUps(),
		CacheGeneralPages: occ.GeneralPages,
		CachePreloadBytes: occ.PreloadUsedBytes,
		CacheDirtyBytes:   occ.WriteDelayDirtyBytes,
		Determinations:    d.esm.Determinations(),
		Migrations:        st.Migrations,
		MigratedBytes:     st.MigratedBytes,
		PhysicalReads:     st.PhysicalReads,
		PhysicalWrites:    st.PhysicalWrites,
		CacheHits:         st.CacheHits,
		RespCount:         d.resp.Count(),
		RespMean:          d.resp.Mean(),
		RespP95:           d.resp.Percentile(0.95),
		RespP99:           d.resp.Percentile(0.99),
		Faults:            d.inj.Counters().Total(),
		Degraded:          d.esm.Degraded(),
	}
	for e := 0; e < d.arr.Enclosures(); e++ {
		es := obs.EnclosureSample{UsedBytes: d.arr.Used(e)}
		switch since, idle := d.arr.IdleSince(e, now); {
		case !d.arr.EnclosureOn(e, now):
			es.State = obs.EnclosureOff
		case idle:
			es.State = obs.EnclosureIdle
			es.IdleFor = now - since
		default:
			es.State = obs.EnclosureActive
		}
		s.Enclosures = append(s.Enclosures, es)
	}
	return s
}

// processStream consumes CSV logical records from in, driving the
// simulation clock to each record's timestamp. Blank lines and the
// tracegen header are skipped; malformed or out-of-order records abort
// with a line-numbered error.
func (d *daemon) processStream(in io.Reader) error {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var now time.Duration
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "time_ns") {
			continue
		}
		rec, err := parseRecord(text)
		if err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
		if rec.Time < now {
			return fmt.Errorf("line %d: records out of order", line)
		}
		now = rec.Time
		d.evq.RunUntil(d.clk, now)
		d.esm.OnLogical(rec)
		if out, err := d.arr.Submit(rec); err != nil {
			// Injected faults kill the individual I/O, not the daemon;
			// anything else is a real error and aborts the stream.
			var fe *storage.FaultError
			if !errors.As(err, &fe) {
				return fmt.Errorf("line %d: %w", line, err)
			}
		} else {
			d.resp.Add(rec.Op, out.Response)
		}
		d.records++
		d.status(now)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	d.esm.Finish(now)
	d.arr.Finish()
	d.flight.Final(d.flightSample(now))
	d.updateSnapshot(now)
	return nil
}

// status refreshes the /status snapshot and prints a line whenever a
// new placement determination has happened.
func (d *daemon) status(now time.Duration) {
	det := d.esm.Determinations()
	newDet := det != d.lastDet
	d.lastDet = det
	if newDet || d.records%1024 == 0 {
		d.updateSnapshot(now)
	}
	if !newDet || d.opts.quiet {
		return
	}
	hot := 0
	for _, h := range d.esm.Hot() {
		if h {
			hot++
		}
	}
	var mix core.PatternMix
	if plan := d.esm.LastPlan(); plan != nil {
		for _, p := range plan.Patterns {
			mix.Counts[p]++
			mix.Total++
		}
	}
	st := d.arr.Stats()
	fmt.Fprintf(d.out, "[%v] determination #%d: %d/%d hot enclosures, period %v, %s, avg %.1f W, %d spin-ups, %.2f GB migrated\n",
		now.Round(time.Second), det, hot, d.enclosures,
		d.esm.Period().Round(time.Second), mix.String(),
		d.arr.Meter().AverageEnclosureW(now),
		d.arr.Meter().SpinUps(), float64(st.MigratedBytes)/(1<<30))
}

// updateSnapshot recomputes the mutex-guarded /status payload from the
// live simulation state.
func (d *daemon) updateSnapshot(now time.Duration) {
	snap := statusSnapshot{
		TimeNS:         int64(now),
		Records:        d.records,
		Determinations: d.esm.Determinations(),
		Period:         d.esm.Period().String(),
		PeriodNS:       int64(d.esm.Period()),
		HotMask:        append([]bool(nil), d.esm.Hot()...),
		SpinUps:        d.arr.Meter().SpinUps(),
		AvgEnclosureW:  d.arr.Meter().AverageEnclosureW(now),
		Cache:          d.arr.CacheOccupancy(),
	}
	st := d.arr.Stats()
	snap.MigratedBytes = st.MigratedBytes
	snap.CacheHits = st.CacheHits
	if d.inj != nil {
		c := d.inj.Counters()
		snap.Faults = c.Total()
		snap.FailedIOs = c.FailedAppIOs
		snap.Degraded = d.esm.Degraded()
		snap.Degradations = d.esm.Degradations()
	}
	if plan := d.esm.LastPlan(); plan != nil {
		snap.PatternMix = map[string]int{}
		for _, p := range plan.Patterns {
			snap.PatternMix[p.String()]++
		}
	}
	if d.trc != nil {
		// Settle the power-state accumulators to now so the attribution
		// reflects energy actually drawn; the ledger accepts repeated
		// attribution at non-decreasing times.
		d.arr.Finish()
		snap.Latency = d.trc.LatencySummary()
		snap.Attribution = d.trc.Attribute(now, d.arr.EnclosureEnergy)
	}
	d.mu.Lock()
	d.snap = snap
	d.mu.Unlock()
}

// statusJSON is the /status content callback; it must be safe to call
// from HTTP handler goroutines.
func (d *daemon) statusJSON() any {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.snap
}

// report prints the end-of-stream summary.
func (d *daemon) report() {
	now := d.clk.Now()
	fmt.Fprintf(d.out, "\nprocessed %d records over %v\n", d.records, now.Round(time.Second))
	fmt.Fprintf(d.out, "determinations     %d\n", d.esm.Determinations())
	fmt.Fprintf(d.out, "avg enclosure      %.1f W\n", d.arr.Meter().AverageEnclosureW(now))
	fmt.Fprintf(d.out, "avg total          %.1f W\n", d.arr.Meter().AverageTotalW(now))
	fmt.Fprintf(d.out, "spin-ups           %d\n", d.arr.Meter().SpinUps())
	st := d.arr.Stats()
	fmt.Fprintf(d.out, "migrated           %.2f GB\n", float64(st.MigratedBytes)/(1<<30))
	fmt.Fprintf(d.out, "cache hits         %d\n", st.CacheHits)
	fmt.Fprintf(d.out, "delayed writes     %d\n", st.DelayedWrites)
	if d.inj != nil {
		c := d.inj.Counters()
		fmt.Fprintf(d.out, "injected faults    %d (%d failed app I/Os, %d failed migrations)\n",
			c.Total(), c.FailedAppIOs, c.FailedMigrations)
		fmt.Fprintf(d.out, "degradations       %d\n", d.esm.Degradations())
	}
}

func parseRecord(text string) (trace.LogicalRecord, error) {
	fields := strings.Split(text, ",")
	if len(fields) != 5 {
		return trace.LogicalRecord{}, fmt.Errorf("want 5 fields, got %d", len(fields))
	}
	t, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return trace.LogicalRecord{}, fmt.Errorf("time: %w", err)
	}
	if t < 0 {
		return trace.LogicalRecord{}, fmt.Errorf("negative time %d", t)
	}
	item, err := strconv.ParseInt(fields[1], 10, 32)
	if err != nil {
		return trace.LogicalRecord{}, fmt.Errorf("item: %w", err)
	}
	off, err := strconv.ParseInt(fields[2], 10, 64)
	if err != nil {
		return trace.LogicalRecord{}, fmt.Errorf("offset: %w", err)
	}
	// ParseInt's bitSize 32 rejects values outside int32, so a size like
	// 3 GiB fails here instead of overflowing the record's int32 field.
	size, err := strconv.ParseInt(fields[3], 10, 32)
	if err != nil {
		return trace.LogicalRecord{}, fmt.Errorf("size: %w", err)
	}
	if size <= 0 {
		return trace.LogicalRecord{}, fmt.Errorf("non-positive size %d", size)
	}
	var op trace.Op
	switch fields[4] {
	case "R":
		op = trace.OpRead
	case "W":
		op = trace.OpWrite
	default:
		return trace.LogicalRecord{}, fmt.Errorf("invalid op %q", fields[4])
	}
	return trace.LogicalRecord{
		Time: time.Duration(t), Item: trace.ItemID(item),
		Offset: off, Size: int32(size), Op: op,
	}, nil
}
