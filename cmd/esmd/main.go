// Command esmd is the energy-efficient storage management daemon. In
// its classic single-array form it consumes a logical I/O stream (CSV
// records on stdin, as produced by tracegen -format csv), feeds the
// monitoring system, runs the power management function at each
// monitoring-period end and drives the simulated storage unit —
// printing a status line per placement determination and a final
// energy report.
//
// With -fleet it becomes a multi-array control plane instead: the
// fleet file declares N named arrays (each its own simulator, ESM
// policy instance and telemetry), traces arrive live over streaming
// HTTP ingest (POST /arrays/<name>/ingest — NDJSON, CSV or the binary
// stream codec), policies hot-swap over POST /arrays/<name>/config,
// and /fleet rolls the per-array energy ledgers up into fleet-wide
// joules, electricity cost and carbon. All metrics share one registry,
// namespaced by an array="<name>" label. The daemon then runs until
// interrupted, printing each array's report on shutdown.
//
// With -listen the single-array daemon serves the same control plane
// for its one array, plus the classic top-level aliases: /status (JSON
// snapshot of the current period, hot mask, pattern mix, cache
// occupancy and ingest liveness) and /series (the flight recorder's
// live series; JSON, ?format=csv, ?since=/?until= windowing). /metrics
// (Prometheus text), /fleet and /debug/pprof come with the mux. With
// -events it appends the typed telemetry event stream as JSON lines;
// with -trace it writes a Chrome/Perfetto trace-event JSON file on
// exit; with -series it writes the flight series CSV on exit.
//
// Usage:
//
//	tracegen -workload fileserver -scale 0.2 -format csv \
//	         -out /dev/stdout -catalog fs.items -placement fs.layout |
//	  esmd -catalog fs.items -placement fs.layout \
//	       -listen :9090 -events events.jsonl
//
//	esmd -fleet fleet.json -listen :9090
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"esm/internal/config"
	"esm/internal/fleet"
	"esm/internal/obs"
)

func main() {
	fleetPath := flag.String("fleet", "", "fleet configuration file: run the multi-array control plane")
	catalogPath := flag.String("catalog", "", "catalog path (required without -fleet)")
	placementPath := flag.String("placement", "", "initial-placement path (required without -fleet)")
	name := flag.String("name", "esm", "array name in metrics and /arrays/ URLs (single-array mode)")
	enclosures := flag.Int("enclosures", 0, "enclosure count (0 = infer from placement)")
	quiet := flag.Bool("quiet", false, "suppress per-determination status lines")
	configPath := flag.String("config", "", "optional JSON config for storage and ESM parameters")
	listen := flag.String("listen", "", "serve the control plane (/metrics, /status, /fleet, /arrays/, /debug/pprof) on this address")
	events := flag.String("events", "", "append the telemetry event stream to this JSONL file")
	tracePath := flag.String("trace", "", "write a Perfetto trace-event JSON file of every I/O and management span")
	seriesPath := flag.String("series", "", "write the flight-recorder series here as CSV on exit (also served live on /series)")
	seriesInterval := flag.Duration("series-interval", 30*time.Second, "flight-recorder sampling interval (simulated time)")
	faultSpec := flag.String("faults", "", "fault-injection scenario, e.g. seed=42,spinup=0.1,io=0.001,battery=10m:25m")
	shards := flag.Int("shards", 0, "shard count for the sharded deterministic engine (0 or 1 = serial; ignored with -faults)")
	alertSpec := flag.String("alerts", "", "comma-separated watchdog rules for the single array, e.g. budget:total_energy_j>1.5e6:for=30s (fleet mode: declare rules in the fleet file)")
	provenance := flag.Bool("provenance", false, "record the decision-provenance ledger, served live at /arrays/<name>/provenance (fleet mode: set \"provenance\" per array in the fleet file)")
	provPath := flag.String("provenance-out", "", "write the provenance ledger here as CSV on exit (implies -provenance)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(obs.VersionString("esmd"))
		return
	}

	opts := daemonOpts{
		fleetPath:     *fleetPath,
		catalogPath:   *catalogPath,
		placementPath: *placementPath,
		name:          *name,
		configPath:    *configPath,
		enclosures:    *enclosures,
		quiet:         *quiet,
		listen:        *listen,
		eventsPath:    *events,
		tracePath:     *tracePath,
		seriesPath:    *seriesPath,
		seriesEvery:   *seriesInterval,
		faults:        *faultSpec,
		shards:        *shards,
		alerts:        *alertSpec,
		provenance:    *provenance || *provPath != "",
		provPath:      *provPath,
	}
	if opts.fleetPath == "" && (opts.catalogPath == "" || opts.placementPath == "") {
		fmt.Fprintln(os.Stderr, "esmd: -catalog and -placement are required (or -fleet)")
		os.Exit(2)
	}
	if err := run(opts, os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "esmd:", err)
		os.Exit(1)
	}
}

type daemonOpts struct {
	fleetPath     string
	catalogPath   string
	placementPath string
	name          string
	configPath    string
	enclosures    int
	quiet         bool
	listen        string
	eventsPath    string
	tracePath     string
	seriesPath    string
	seriesEvery   time.Duration
	faults        string
	shards        int
	alerts        string
	provenance    bool
	provPath      string
}

func run(opts daemonOpts, in io.Reader, out io.Writer) error {
	if opts.fleetPath != "" {
		return runFleet(opts, out)
	}
	return runSingle(opts, in, out)
}

// daemon is the classic single-array mode: one fleet array fed from a
// CSV stream, with the control-plane mux plus top-level aliases.
type daemon struct {
	opts daemonOpts
	out  io.Writer
	fl   *fleet.Fleet
	arr  *fleet.Array
}

// newDaemon builds the single managed array from the flag set.
func newDaemon(opts daemonOpts, out io.Writer) (*daemon, error) {
	if opts.name == "" {
		opts.name = "esm"
	}
	var alerts []string
	if opts.alerts != "" {
		alerts = strings.Split(opts.alerts, ",")
	}
	spec, err := fleet.LoadArraySpec(config.FleetArrayConfig{
		Name:       opts.name,
		Catalog:    opts.catalogPath,
		Placement:  opts.placementPath,
		Config:     opts.configPath,
		Faults:     opts.faults,
		Shards:     opts.shards,
		Alerts:     alerts,
		Provenance: opts.provenance,
	})
	if err != nil {
		return nil, err
	}
	spec.Enclosures = opts.enclosures
	spec.SeriesInterval = opts.seriesEvery
	if !opts.quiet {
		spec.StatusOut = out
	}
	if opts.eventsPath != "" {
		f, err := os.Create(opts.eventsPath)
		if err != nil {
			return nil, err
		}
		spec.EventSink = obs.NewJSONLSink(f)
	}
	if opts.tracePath != "" {
		f, err := os.Create(opts.tracePath)
		if err != nil {
			return nil, err
		}
		spec.SpanSink = obs.NewPerfettoSink(f, "esmd")
	}
	fl, err := fleet.New(fleet.Options{Specs: []fleet.ArraySpec{spec}})
	if err != nil {
		return nil, err
	}
	return &daemon{opts: opts, out: out, fl: fl, arr: fl.Array(spec.Name)}, nil
}

// handler serves the fleet control plane with the classic single-array
// aliases layered on top: /status and /series answer for the one array
// directly, as they always did.
func (d *daemon) handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", d.fl.Handler())
	mux.HandleFunc("/status", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		st := d.arr.Status()
		fmt.Fprintf(w, "%s", mustJSON(st))
	})
	mux.HandleFunc("/series", func(w http.ResponseWriter, r *http.Request) {
		obs.ServeSeries(w, r, d.arr.Series())
	})
	return mux
}

// processStream drains the CSV stream into the array and finalizes it.
func (d *daemon) processStream(in io.Reader) error {
	if _, err := d.arr.IngestCSV(in); err != nil {
		return err
	}
	return d.arr.Finish()
}

func runSingle(opts daemonOpts, in io.Reader, out io.Writer) error {
	d, err := newDaemon(opts, out)
	if err != nil {
		return err
	}
	defer d.fl.Close()

	if opts.listen != "" {
		ln, err := net.Listen("tcp", opts.listen)
		if err != nil {
			return err
		}
		defer ln.Close()
		go http.Serve(ln, d.handler())
		fmt.Fprintf(out, "serving /metrics /status /series /alerts /healthz /fleet /arrays/ /debug/pprof on %v\n", ln.Addr())
	}

	if err := d.processStream(in); err != nil {
		return err
	}
	d.arr.Report(out)
	if states := d.arr.Alerts(); len(states) > 0 {
		sum := d.arr.AlertSummary()
		fmt.Fprintf(out, "alerts: %d firing, %d fired, %d transitions\n", sum.Firing, sum.Fired, sum.Transitions)
		for _, st := range states {
			fmt.Fprintf(out, "  %-40s %-8s value %g, threshold %g, fired %d\n",
				st.Spec, st.State, st.Value, st.Threshold, st.Fired)
		}
	}
	if opts.seriesPath != "" {
		if s := d.arr.Series(); s != nil {
			f, err := os.Create(opts.seriesPath)
			if err != nil {
				return err
			}
			if err := s.WriteCSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(out, "flight series (%d samples) written to %s\n", s.Len(), opts.seriesPath)
		}
	}
	if p := d.arr.ProvenanceSummary(); p != nil {
		fmt.Fprintf(out, "provenance: %d rows (%d offered, stride %d): %d determinations, %d decisions, %d transitions\n",
			p.Records, p.Offered, p.Stride, p.Determinations, p.Decisions, p.Transitions)
		if opts.provPath != "" {
			s := d.arr.ProvenanceSeries()
			f, err := os.Create(opts.provPath)
			if err != nil {
				return err
			}
			if err := s.WriteCSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(out, "provenance ledger written to %s\n", opts.provPath)
		}
	}
	if err := d.fl.Close(); err != nil {
		return err
	}
	if opts.tracePath != "" {
		fmt.Fprintf(out, "trace written to %s\n", opts.tracePath)
	}
	return nil
}

// runFleet boots the multi-array control plane and serves it until
// interrupted; on SIGINT/SIGTERM every array is finalized and reported.
func runFleet(opts daemonOpts, out io.Writer) error {
	if opts.alerts != "" {
		return fmt.Errorf("fleet mode: declare alert rules in the fleet file (top-level \"alerts\" for fleet_* budgets, per-array \"alerts\" otherwise), not -alerts")
	}
	file, err := config.LoadFleet(opts.fleetPath)
	if err != nil {
		return err
	}
	fl, err := fleet.FromConfig(file)
	if err != nil {
		return err
	}
	defer fl.Close()

	listen := opts.listen
	if listen == "" {
		listen = file.Listen
	}
	if listen == "" {
		return fmt.Errorf("fleet mode needs -listen (or \"listen\" in the fleet file)")
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	defer ln.Close()
	go http.Serve(ln, fl.Handler())
	names := fl.Names()
	fmt.Fprintf(out, "fleet control plane: %d arrays %v on %v\n", len(names), names, ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig

	if err := fl.FinishAll(); err != nil {
		return err
	}
	for _, name := range names {
		fl.Array(name).Report(out)
	}
	if rep := fl.Alerts(); rep.Summary.Rules > 0 {
		fmt.Fprintf(out, "alerts: %d rules, %d firing, %d fired, %d transitions\n",
			rep.Summary.Rules, rep.Summary.Firing, rep.Summary.Fired, rep.Summary.Transitions)
	}
	return fl.Close()
}

// mustJSON marshals v with the indentation every JSON endpoint uses.
func mustJSON(v any) []byte {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return []byte("{}")
	}
	return append(b, '\n')
}
