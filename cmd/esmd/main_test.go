package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"esm/internal/config"
	"esm/internal/fleet"
	"esm/internal/obs"
	"esm/internal/trace"
)

// parseRecord is the daemon's CSV ingestion contract (one record per
// "time_ns,item,offset,size,op" line), now provided by the trace
// package for every streaming consumer.
func parseRecord(text string) (trace.LogicalRecord, error) {
	return trace.ParseCSVRecord(text, 1)
}

func TestParseRecordValid(t *testing.T) {
	rec, err := parseRecord("1500000000,3,4096,8192,W")
	if err != nil {
		t.Fatal(err)
	}
	want := trace.LogicalRecord{
		Time: 1500 * time.Millisecond, Item: 3,
		Offset: 4096, Size: 8192, Op: trace.OpWrite,
	}
	if rec != want {
		t.Fatalf("got %+v, want %+v", rec, want)
	}
	if rec, _ := parseRecord("0,0,0,512,R"); rec.Op != trace.OpRead {
		t.Fatalf("read op parsed as %v", rec.Op)
	}
}

func TestParseRecordMalformed(t *testing.T) {
	cases := []struct {
		name, line string
	}{
		{"too few fields", "1,2,3,R"},
		{"too many fields", "1,2,3,4,R,extra"},
		{"non-numeric time", "abc,2,3,4,R"},
		{"negative time", "-5,2,3,4,R"},
		{"non-numeric item", "1,x,3,4,R"},
		{"non-numeric offset", "1,2,x,4,R"},
		{"non-numeric size", "1,2,3,x,R"},
		{"zero size", "1,2,3,0,R"},
		{"negative size", "1,2,3,-1,R"},
		{"size over int32", fmt.Sprintf("1,2,3,%d,R", int64(1)<<31)},
		{"bad op", "1,2,3,4,Q"},
		{"lowercase op", "1,2,3,4,r"},
		{"empty line", ""},
	}
	for _, c := range cases {
		if _, err := parseRecord(c.line); err == nil {
			t.Errorf("%s: parseRecord(%q) succeeded, want error", c.name, c.line)
		}
	}
}

// TestParseRecordSizeBoundary: MaxInt32 must round-trip exactly while
// MaxInt32+1 must be rejected rather than wrap negative.
func TestParseRecordSizeBoundary(t *testing.T) {
	rec, err := parseRecord(fmt.Sprintf("1,2,3,%d,R", int32(1<<31-1)))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Size != 1<<31-1 {
		t.Fatalf("size = %d", rec.Size)
	}
}

// writeDataset writes a tiny synthetic catalog and placement into dir
// and returns their paths.
func writeDataset(t *testing.T, dir string) (string, string) {
	t.Helper()
	cat := trace.NewCatalog()
	for i := 0; i < 8; i++ {
		cat.Add(fmt.Sprintf("item%d", i), 1<<20)
	}
	var buf bytes.Buffer
	if err := trace.WriteCatalog(&buf, cat); err != nil {
		t.Fatal(err)
	}
	catPath := filepath.Join(dir, "items")
	if err := os.WriteFile(catPath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	placement := []int{0, 0, 1, 1, 2, 2, 3, 3}
	if err := trace.WritePlacement(&buf, placement); err != nil {
		t.Fatal(err)
	}
	plPath := filepath.Join(dir, "layout")
	if err := os.WriteFile(plPath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return catPath, plPath
}

// testDaemon builds a single-array daemon over a tiny synthetic
// catalog.
func testDaemon(t *testing.T, opts daemonOpts, out io.Writer) *daemon {
	t.Helper()
	opts.catalogPath, opts.placementPath = writeDataset(t, t.TempDir())
	d, err := newDaemon(opts, out)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.fl.Close() })
	return d
}

func TestProcessStreamSkipsHeaderAndBlanks(t *testing.T) {
	var out bytes.Buffer
	d := testDaemon(t, daemonOpts{quiet: true}, &out)
	in := strings.Join([]string{
		"time_ns,item,offset,size,op",
		"",
		"1000000,0,0,4096,R",
		"   ",
		"2000000,1,0,4096,W",
	}, "\n")
	if err := d.processStream(strings.NewReader(in)); err != nil {
		t.Fatal(err)
	}
	if got := d.arr.Records(); got != 2 {
		t.Fatalf("processed %d records, want 2", got)
	}
	if !d.arr.Finished() {
		t.Fatal("stream end did not finalize the array")
	}
}

func TestProcessStreamRejectsOutOfOrder(t *testing.T) {
	var out bytes.Buffer
	d := testDaemon(t, daemonOpts{quiet: true}, &out)
	in := "2000000,0,0,4096,R\n1000000,1,0,4096,R\n"
	err := d.processStream(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "line 2") || !strings.Contains(err.Error(), "out of order") {
		t.Fatalf("want line-2 out-of-order error, got %v", err)
	}
}

func TestProcessStreamRejectsMalformedWithLineNumber(t *testing.T) {
	var out bytes.Buffer
	d := testDaemon(t, daemonOpts{quiet: true}, &out)
	in := "time_ns,item,offset,size,op\n1000000,0,0,4096,R\nnot,a,record\n"
	err := d.processStream(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("want line-3 error, got %v", err)
	}
}

// TestDaemonServesEndpoints: a daemon with -listen must answer
// /metrics, /status (with liveness counters), /series, /fleet, the
// /arrays/ control plane and /debug/pprof/ while a stream is
// processed.
func TestDaemonServesEndpoints(t *testing.T) {
	var out bytes.Buffer
	d := testDaemon(t, daemonOpts{quiet: true, name: "esm"}, &out)
	srv := http.Server{Handler: d.handler()}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go srv.Serve(ln)

	if err := d.processStream(strings.NewReader("1000000,0,0,4096,R\n")); err != nil {
		t.Fatal(err)
	}

	base := "http://" + ln.Addr().String()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), `esm_physical_reads_total{array="esm"}`) {
		t.Fatalf("/metrics: code %d body %q", resp.StatusCode, body)
	}

	resp, err = http.Get(base + "/status")
	if err != nil {
		t.Fatal(err)
	}
	var snap fleet.Status
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Records != 1 {
		t.Fatalf("/status records = %d, want 1", snap.Records)
	}
	if snap.Period == "" {
		t.Fatal("/status period empty")
	}
	if snap.IngestRequests != 1 || snap.IngestRecords != 1 {
		t.Fatalf("/status ingest liveness %d/%d, want 1/1", snap.IngestRequests, snap.IngestRecords)
	}
	if snap.SeriesSamples == 0 {
		t.Fatal("/status series_samples = 0, liveness not visible")
	}

	resp, err = http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/debug/pprof/: code %d", resp.StatusCode)
	}

	resp, err = http.Get(base + "/series")
	if err != nil {
		t.Fatal(err)
	}
	var series obs.Series
	if err := json.NewDecoder(resp.Body).Decode(&series); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if series.Len() == 0 || series.Column("total_energy_j") == nil {
		t.Fatalf("/series payload: %d samples, cols %v", series.Len(), series.Cols)
	}

	// The fleet surface answers for the single array too.
	resp, err = http.Get(base + "/fleet")
	if err != nil {
		t.Fatal(err)
	}
	var roll fleet.Rollup
	if err := json.NewDecoder(resp.Body).Decode(&roll); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(roll.Arrays) != 1 || roll.Arrays[0].Array != "esm" {
		t.Fatalf("/fleet lines %+v", roll.Arrays)
	}
	if roll.Fleet.MeteredJ != roll.Arrays[0].MeteredJ {
		t.Fatalf("single-array fleet total %v != line %v", roll.Fleet.MeteredJ, roll.Arrays[0].MeteredJ)
	}
	resp, err = http.Get(base + "/arrays/esm/status")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/arrays/esm/status: code %d", resp.StatusCode)
	}
}

// TestDaemonFlightSeries: the daemon samples the stream on the
// simulated clock and the final sample carries the end-of-stream
// counters.
func TestDaemonFlightSeries(t *testing.T) {
	var out bytes.Buffer
	d := testDaemon(t, daemonOpts{quiet: true, seriesPath: "x", seriesEvery: time.Second}, &out)
	var sb strings.Builder
	// 10 simulated seconds of traffic, one read per second.
	for i := 0; i <= 10; i++ {
		fmt.Fprintf(&sb, "%d,%d,0,4096,R\n", int64(i)*int64(time.Second), i%8)
	}
	if err := d.processStream(strings.NewReader(sb.String())); err != nil {
		t.Fatal(err)
	}
	s := d.arr.Series()
	if s == nil || s.Len() < 10 {
		t.Fatalf("series has %d samples, want >= 10 (1 Hz over 10 s)", s.Len())
	}
	reads := s.Column("physical_reads")
	hits := s.Column("cache_hits")
	if reads == nil || hits == nil {
		t.Fatalf("columns missing: %v", s.Cols)
	}
	if reads[len(reads)-1]+hits[len(hits)-1] == 0 {
		t.Fatal("final sample saw no I/O at all")
	}
	if respCount := s.Column("resp_count"); respCount[len(respCount)-1] != 11 {
		t.Fatalf("final resp_count %v, want 11", respCount[len(respCount)-1])
	}
	// The per-enclosure layout covers the daemon's 4 enclosures.
	if s.Column("enc3_state") == nil {
		t.Fatalf("per-enclosure columns missing: %v", s.Cols)
	}
}

// TestRunFleetConfig: the -fleet path boots from a fleet file, loads
// every array and applies the cost overrides.
func TestRunFleetConfig(t *testing.T) {
	dir := t.TempDir()
	catPath, plPath := writeDataset(t, dir)
	fleetPath := filepath.Join(dir, "fleet.json")
	doc := fmt.Sprintf(`{
		"cost": {"pue": 1.2, "replication_factor": 2},
		"arrays": [
			{"name": "tokyo", "catalog": %q, "placement": %q, "series_interval": "1s"},
			{"name": "osaka", "catalog": %q, "placement": %q}
		]
	}`, catPath, plPath, catPath, plPath)
	if err := os.WriteFile(fleetPath, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	file, err := config.LoadFleet(fleetPath)
	if err != nil {
		t.Fatal(err)
	}
	fl, err := fleet.FromConfig(file)
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	if names := fl.Names(); len(names) != 2 || names[0] != "osaka" || names[1] != "tokyo" {
		t.Fatalf("names %v", names)
	}
	if m := fl.Cost(); m.PUE != 1.2 || m.ReplicationFactor != 2 || m.LifespanYears != 6 {
		t.Fatalf("cost model %+v", m)
	}
}
