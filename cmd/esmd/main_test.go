package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"esm/internal/obs"
	"esm/internal/trace"
)

func TestParseRecordValid(t *testing.T) {
	rec, err := parseRecord("1500000000,3,4096,8192,W")
	if err != nil {
		t.Fatal(err)
	}
	want := trace.LogicalRecord{
		Time: 1500 * time.Millisecond, Item: 3,
		Offset: 4096, Size: 8192, Op: trace.OpWrite,
	}
	if rec != want {
		t.Fatalf("got %+v, want %+v", rec, want)
	}
	if rec, _ := parseRecord("0,0,0,512,R"); rec.Op != trace.OpRead {
		t.Fatalf("read op parsed as %v", rec.Op)
	}
}

func TestParseRecordMalformed(t *testing.T) {
	cases := []struct {
		name, line string
	}{
		{"too few fields", "1,2,3,R"},
		{"too many fields", "1,2,3,4,R,extra"},
		{"non-numeric time", "abc,2,3,4,R"},
		{"negative time", "-5,2,3,4,R"},
		{"non-numeric item", "1,x,3,4,R"},
		{"non-numeric offset", "1,2,x,4,R"},
		{"non-numeric size", "1,2,3,x,R"},
		{"zero size", "1,2,3,0,R"},
		{"negative size", "1,2,3,-1,R"},
		{"size over int32", fmt.Sprintf("1,2,3,%d,R", int64(1)<<31)},
		{"bad op", "1,2,3,4,Q"},
		{"lowercase op", "1,2,3,4,r"},
		{"empty line", ""},
	}
	for _, c := range cases {
		if _, err := parseRecord(c.line); err == nil {
			t.Errorf("%s: parseRecord(%q) succeeded, want error", c.name, c.line)
		}
	}
}

// TestParseRecordSizeBoundary: MaxInt32 must round-trip exactly while
// MaxInt32+1 must be rejected rather than wrap negative.
func TestParseRecordSizeBoundary(t *testing.T) {
	rec, err := parseRecord(fmt.Sprintf("1,2,3,%d,R", int32(1<<31-1)))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Size != 1<<31-1 {
		t.Fatalf("size = %d", rec.Size)
	}
}

// testDaemon builds a daemon over a tiny synthetic catalog.
func testDaemon(t *testing.T, opts daemonOpts, out io.Writer) *daemon {
	t.Helper()
	dir := t.TempDir()
	cat := trace.NewCatalog()
	for i := 0; i < 8; i++ {
		cat.Add(fmt.Sprintf("item%d", i), 1<<20)
	}
	var buf bytes.Buffer
	if err := trace.WriteCatalog(&buf, cat); err != nil {
		t.Fatal(err)
	}
	catPath := filepath.Join(dir, "items")
	if err := os.WriteFile(catPath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	placement := []int{0, 0, 1, 1, 2, 2, 3, 3}
	if err := trace.WritePlacement(&buf, placement); err != nil {
		t.Fatal(err)
	}
	plPath := filepath.Join(dir, "layout")
	if err := os.WriteFile(plPath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	opts.catalogPath = catPath
	opts.placementPath = plPath
	d, err := newDaemon(opts, out)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestProcessStreamSkipsHeaderAndBlanks(t *testing.T) {
	var out bytes.Buffer
	d := testDaemon(t, daemonOpts{quiet: true}, &out)
	in := strings.Join([]string{
		"time_ns,item,offset,size,op",
		"",
		"1000000,0,0,4096,R",
		"   ",
		"2000000,1,0,4096,W",
	}, "\n")
	if err := d.processStream(strings.NewReader(in)); err != nil {
		t.Fatal(err)
	}
	if d.records != 2 {
		t.Fatalf("processed %d records, want 2", d.records)
	}
}

func TestProcessStreamRejectsOutOfOrder(t *testing.T) {
	var out bytes.Buffer
	d := testDaemon(t, daemonOpts{quiet: true}, &out)
	in := "2000000,0,0,4096,R\n1000000,1,0,4096,R\n"
	err := d.processStream(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "line 2") || !strings.Contains(err.Error(), "out of order") {
		t.Fatalf("want line-2 out-of-order error, got %v", err)
	}
}

func TestProcessStreamRejectsMalformedWithLineNumber(t *testing.T) {
	var out bytes.Buffer
	d := testDaemon(t, daemonOpts{quiet: true}, &out)
	in := "time_ns,item,offset,size,op\n1000000,0,0,4096,R\nnot,a,record\n"
	err := d.processStream(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("want line-3 error, got %v", err)
	}
}

// TestDaemonServesEndpoints: a daemon with -listen must answer
// /metrics, /status and /debug/pprof/ while a stream is processed.
func TestDaemonServesEndpoints(t *testing.T) {
	var out bytes.Buffer
	d := testDaemon(t, daemonOpts{quiet: true, listen: "127.0.0.1:0"}, &out)
	// Serve the way run() does, but on an ephemeral port owned by the test.
	srv := http.Server{Handler: obs.Handler(d.rec.Registry(), d.statusJSON, d.flight.Series)}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go srv.Serve(ln)

	if err := d.processStream(strings.NewReader("1000000,0,0,4096,R\n")); err != nil {
		t.Fatal(err)
	}

	base := "http://" + ln.Addr().String()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "esm_physical_reads_total") {
		t.Fatalf("/metrics: code %d body %q", resp.StatusCode, body)
	}

	resp, err = http.Get(base + "/status")
	if err != nil {
		t.Fatal(err)
	}
	var snap statusSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Records != 1 {
		t.Fatalf("/status records = %d, want 1", snap.Records)
	}
	if snap.Period == "" {
		t.Fatal("/status period empty")
	}

	resp, err = http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/debug/pprof/: code %d", resp.StatusCode)
	}

	resp, err = http.Get(base + "/series")
	if err != nil {
		t.Fatal(err)
	}
	var series obs.Series
	if err := json.NewDecoder(resp.Body).Decode(&series); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if series.Len() == 0 || series.Column("total_energy_j") == nil {
		t.Fatalf("/series payload: %d samples, cols %v", series.Len(), series.Cols)
	}
}

// TestDaemonFlightSeries: a daemon with -series samples the stream on
// the simulated clock and the final sample carries the end-of-stream
// counters.
func TestDaemonFlightSeries(t *testing.T) {
	var out bytes.Buffer
	d := testDaemon(t, daemonOpts{quiet: true, seriesPath: "x", seriesEvery: time.Second}, &out)
	var sb strings.Builder
	// 10 simulated seconds of traffic, one read per second.
	for i := 0; i <= 10; i++ {
		fmt.Fprintf(&sb, "%d,%d,0,4096,R\n", int64(i)*int64(time.Second), i%8)
	}
	if err := d.processStream(strings.NewReader(sb.String())); err != nil {
		t.Fatal(err)
	}
	s := d.flight.Series()
	if s == nil || s.Len() < 10 {
		t.Fatalf("series has %d samples, want >= 10 (1 Hz over 10 s)", s.Len())
	}
	reads := s.Column("physical_reads")
	hits := s.Column("cache_hits")
	if reads == nil || hits == nil {
		t.Fatalf("columns missing: %v", s.Cols)
	}
	if got := reads[len(reads)-1] + 0; got+hits[len(hits)-1] == 0 {
		t.Fatal("final sample saw no I/O at all")
	}
	if respCount := s.Column("resp_count"); respCount[len(respCount)-1] != 11 {
		t.Fatalf("final resp_count %v, want 11", respCount[len(respCount)-1])
	}
	// The per-enclosure layout covers the daemon's 4 enclosures.
	if s.Column("enc3_state") == nil {
		t.Fatalf("per-enclosure columns missing: %v", s.Cols)
	}
}
