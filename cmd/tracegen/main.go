// Command tracegen generates the synthetic application traces used by
// the evaluation (file server, OLTP, DSS, the multi-tenant cloud-block
// workload, or a generic synthetic mix)
// and writes them to disk together with their item catalog, in the
// compact binary format, CSV, the appendable stream format, or NDJSON
// (the wire format of esmd's fleet ingest endpoint). The stream and
// ndjson formats are written straight off the workload's lazy trace
// source, so traces larger than memory can be generated.
//
// Usage:
//
//	tracegen -workload fileserver -scale 0.5 -out fs.trace -catalog fs.items
//	tracegen -workload oltp -format csv -out oltp.csv -catalog oltp.items
//
// The generated pair can be replayed with esmreplay and inspected with
// esmstat.
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"sort"

	"esm/internal/experiments"
	"esm/internal/obs"
	"esm/internal/trace"
	"esm/internal/workload"
)

func main() {
	kind := flag.String("workload", "fileserver", "fileserver, oltp, dss, cloudblock, sensor or synthetic")
	scale := flag.Float64("scale", 1.0, "time-scale factor (1.0 = paper-scale durations)")
	seed := flag.Int64("seed", 0, "override the workload's default seed (0 = keep)")
	format := flag.String("format", "binary", "binary, csv, stream or ndjson")
	out := flag.String("out", "", "trace output path (required)")
	catalogPath := flag.String("catalog", "", "catalog output path (required)")
	placementPath := flag.String("placement", "", "initial-placement output path (required)")
	shardSkew := flag.Float64("shard-skew", 0, "Zipf exponent for enclosure-group placement skew: items land on enclosure g with probability proportional to (g+1)^-s (0 = keep the workload's own placement)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(obs.VersionString("tracegen"))
		return
	}

	if *out == "" || *catalogPath == "" || *placementPath == "" {
		fmt.Fprintln(os.Stderr, "tracegen: -out, -catalog and -placement are required")
		os.Exit(2)
	}
	if *shardSkew < 0 {
		fmt.Fprintln(os.Stderr, "tracegen: -shard-skew must be >= 0")
		os.Exit(2)
	}
	if err := run(*kind, *scale, *seed, *format, *out, *catalogPath, *placementPath, *shardSkew); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(kind string, scale float64, seed int64, format, out, catalogPath, placementPath string, shardSkew float64) error {
	var w *workload.Workload
	var err error
	switch kind {
	case "synthetic":
		cfg := workload.DefaultSyntheticConfig()
		if seed != 0 {
			cfg.Seed = seed
		}
		w, err = workload.GenerateSynthetic(cfg)
	case "sensor":
		cfg := workload.DefaultSensorConfig().Scaled(scale)
		if seed != 0 {
			cfg.Seed = seed
		}
		w, err = workload.GenerateSensorArchive(cfg)
	default:
		w, err = buildWithSeed(experiments.Kind(kind), scale, seed)
	}
	if err != nil {
		return err
	}
	if shardSkew > 0 {
		skewPlacement(w, shardSkew, seed)
	}

	tf, err := os.Create(out)
	if err != nil {
		return err
	}
	defer tf.Close()
	switch format {
	case "binary":
		err = trace.WriteBinary(tf, w.EnsureRecords())
	case "csv":
		err = trace.WriteCSV(tf, w.EnsureRecords())
	case "stream":
		// The length-prefixed formats need the whole trace up front;
		// the stream format is emitted record by record in O(items)
		// memory.
		err = writeIncremental(trace.NewStreamWriter(tf), w)
	case "ndjson":
		err = writeIncremental(trace.NewNDJSONWriter(tf), w)
	default:
		err = fmt.Errorf("unknown format %q", format)
	}
	if err != nil {
		return err
	}
	if err := tf.Close(); err != nil {
		return err
	}

	cf, err := os.Create(catalogPath)
	if err != nil {
		return err
	}
	defer cf.Close()
	if err := trace.WriteCatalog(cf, w.Catalog); err != nil {
		return err
	}
	if err := cf.Close(); err != nil {
		return err
	}

	pf, err := os.Create(placementPath)
	if err != nil {
		return err
	}
	defer pf.Close()
	if err := trace.WritePlacement(pf, w.Placement); err != nil {
		return err
	}
	if err := pf.Close(); err != nil {
		return err
	}

	sum, err := trace.SummarizeSource(w.Source())
	if err != nil {
		return err
	}
	fmt.Printf("%s: %s\n", w.Name, sum)
	fmt.Printf("wrote %s (%s), %s (%d items), %s (%d enclosures)\n", out, format, catalogPath, w.Catalog.Len(), placementPath, w.Enclosures)
	return nil
}

// skewPlacement rewrites the initial placement with a Zipf enclosure
// skew: item i lands on enclosure g with probability proportional to
// (g+1)^-s, drawn from a seeded generator so the same flags reproduce
// the same placement. High s concentrates almost every item (and with
// it almost all I/O) on the first enclosure groups — the worst case for
// the sharded replay engine, whose barriers pay most when one shard's
// lane dominates while migrations still cross groups. The trace records
// themselves are untouched; only where items start changes.
func skewPlacement(w *workload.Workload, s float64, seed int64) {
	if seed == 0 {
		seed = 1
	}
	cdf := make([]float64, w.Enclosures)
	var total float64
	for g := range cdf {
		total += math.Pow(float64(g+1), -s)
		cdf[g] = total
	}
	rng := rand.New(rand.NewSource(seed))
	for i := range w.Placement {
		u := rng.Float64() * total
		g := sort.SearchFloat64s(cdf, u)
		if g >= len(cdf) {
			g = len(cdf) - 1
		}
		w.Placement[i] = g
	}
}

// incrementalWriter is the shared shape of the record-by-record codecs.
type incrementalWriter interface {
	Append(trace.LogicalRecord) error
	Close() error
}

// writeIncremental drains the workload's lazy source through an
// appending codec in O(items) memory.
func writeIncremental(sw incrementalWriter, w *workload.Workload) error {
	src := w.Source()
	for {
		rec, ok := src.Next()
		if !ok {
			break
		}
		if err := sw.Append(rec); err != nil {
			return err
		}
	}
	if err := src.Err(); err != nil {
		return err
	}
	return sw.Close()
}

func buildWithSeed(kind experiments.Kind, scale float64, seed int64) (*workload.Workload, error) {
	switch kind {
	case experiments.FileServer:
		cfg := workload.DefaultFileServerConfig().Scaled(scale)
		if seed != 0 {
			cfg.Seed = seed
		}
		return workload.GenerateFileServer(cfg)
	case experiments.OLTP:
		cfg := workload.DefaultOLTPConfig().Scaled(scale)
		if seed != 0 {
			cfg.Seed = seed
		}
		return workload.GenerateOLTP(cfg)
	case experiments.DSS:
		cfg := workload.DefaultDSSConfig().Scaled(scale)
		if seed != 0 {
			cfg.Seed = seed
		}
		return workload.GenerateDSS(cfg)
	case experiments.CloudBlock:
		cfg := workload.DefaultCloudBlockConfig().Scaled(scale)
		if seed != 0 {
			cfg.Seed = seed
		}
		return workload.GenerateCloudBlock(cfg)
	default:
		return nil, fmt.Errorf("unknown workload %q", kind)
	}
}
