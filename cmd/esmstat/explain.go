// The explain subcommand: the root-cause report over a decision-
// provenance ledger (the .prov.csv written by esmreplay/esmbench
// -provenance, or a saved /arrays/<name>/provenance payload). Given a
// time window — stated directly with -since/-until, or resolved from
// an alert rule's first firing transition in a saved -events log — it
// ranks root-cause candidates from the windowed decision and runtime
// rows and joins the end-of-run energy attribution back to each hot
// item's decision chain, so "the budget alert fired" becomes "12
// injected spinup-fail faults forced 34 spin-ups on enclosures 2 and
// 5". The report is a pure function of its input files: byte-identical
// across reruns and serial vs sharded runs.

package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"esm/internal/core"
	"esm/internal/obs"
)

// runExplain implements `esmstat explain`.
func runExplain(out io.Writer, args []string) error {
	fs := flag.NewFlagSet("esmstat explain", flag.ExitOnError)
	since, until := addWindowFlags(fs)
	alertName := fs.String("alert", "", "resolve the window from this alert rule's first firing transition (requires -events)")
	eventsPath := fs.String("events", "", "telemetry event log (JSONL) holding the alert transitions")
	runLabel := fs.String("run", "", "with -events: restrict to the stream with this run label")
	window := fs.Duration("window", 10*time.Minute, "with -alert: window length ending at the firing instant")
	top := fs.Int("top", 5, "entries per ranked section")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 1 || fs.NArg() > 2 {
		return fmt.Errorf("usage: esmstat explain [-since D] [-until D | -alert RULE -events LOG [-run LABEL] [-window D]] [-top N] <run.prov.csv> [run.series.csv]")
	}
	recs, err := loadProvenance(fs.Arg(0))
	if err != nil {
		return err
	}

	lo, hi := *since, *until
	var alertLine string
	if *alertName != "" {
		if *eventsPath == "" {
			return fmt.Errorf("-alert needs -events (the JSONL log holding the alert transitions)")
		}
		at, a, err := findAlertFiring(*eventsPath, *alertName, *runLabel)
		if err != nil {
			return err
		}
		hi = at
		lo = at - *window
		if lo < 0 {
			lo = 0
		}
		alertLine = fmt.Sprintf("alert %s first fired at %v (%s=%g, threshold %g)",
			a.Rule, at.Round(time.Second), a.Signal, a.Value, a.Threshold)
	}

	var win []obs.ProvRecord
	for _, r := range recs {
		if r.T < lo || (hi > 0 && r.T > hi) {
			continue
		}
		win = append(win, r)
	}

	// The base name keeps reports from different artifact directories
	// byte-comparable (the CI smoke cmp's a rerun's report).
	fmt.Fprintf(out, "explain %s: %d ledger rows, %d in window %v..%s\n",
		filepath.Base(fs.Arg(0)), len(recs), len(win), lo.Round(time.Second), untilLabel(hi))
	if alertLine != "" {
		fmt.Fprintln(out, alertLine)
	}
	if len(win) == 0 {
		fmt.Fprintln(out, "no ledger rows in window; nothing to explain")
		return nil
	}

	renderWindowActivity(out, win)
	renderRootCauses(out, win)
	renderEnclosures(out, win, *top)
	renderHotItems(out, recs, *top)

	if fs.NArg() == 2 {
		f, err := os.Open(fs.Arg(1))
		if err != nil {
			return err
		}
		defer f.Close()
		s, err := obs.ReadSeriesCSV(f)
		if err != nil {
			return fmt.Errorf("%s: %w", fs.Arg(1), err)
		}
		s = s.Window(lo, hi)
		fmt.Fprintf(out, "\nseries context (%s, windowed):\n", fs.Arg(1))
		if s.Len() == 0 {
			fmt.Fprintln(out, "  no samples in window")
		} else {
			renderSeries(out, s)
		}
	}
	return nil
}

// loadProvenance reads a provenance CSV into typed records.
func loadProvenance(path string) ([]obs.ProvRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := obs.ReadSeriesCSV(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	recs, ok := obs.DecodeProvenance(s)
	if !ok {
		return nil, fmt.Errorf("%s: not a provenance ledger (missing columns)", path)
	}
	return recs, nil
}

// findAlertFiring returns the time of the first pending/ok -> firing
// transition of the named rule in the event log.
func findAlertFiring(path, rule, runLabel string) (time.Duration, *obs.AlertEvent, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, nil, err
	}
	defer f.Close()
	events, err := obs.ReadEvents(f)
	if err != nil {
		return 0, nil, err
	}
	for _, ev := range events {
		if ev.Type != obs.EvAlert || ev.Alert == nil {
			continue
		}
		if runLabel != "" && ev.Run != runLabel {
			continue
		}
		if ev.Alert.Rule == rule && ev.Alert.State == string(obs.AlertFiring) {
			return time.Duration(ev.T), ev.Alert, nil
		}
	}
	return 0, nil, fmt.Errorf("%s: alert %q never fired (rules present fire as \"alert\" events; was the run started with -alerts?)", path, rule)
}

func untilLabel(hi time.Duration) string {
	if hi <= 0 {
		return "end"
	}
	return hi.Round(time.Second).String()
}

// renderWindowActivity prints the decision and runtime row counts of
// the window, with per-cause breakdowns where they carry signal.
func renderWindowActivity(out io.Writer, win []obs.ProvRecord) {
	var dets, moves, toCold, reclass, preDec, desDec int
	var spinups, powerOn, powerOff, migrations, destages, preloads, faults int
	detCauses := map[string]int{}
	for _, r := range win {
		switch r.Kind {
		case obs.ProvDetermination:
			dets++
			detCauses[r.Cause]++
		case obs.ProvMove:
			moves++
			if r.PredDJ < 0 {
				toCold++
			}
		case obs.ProvReclass:
			reclass++
		case obs.ProvPreload:
			if r.Det >= 0 {
				preDec++
			} else {
				preloads++
			}
		case obs.ProvDestage:
			if r.Det >= 0 {
				desDec++
			} else {
				destages++
			}
		case obs.ProvPower:
			switch r.Dst {
			case 2:
				spinups++
			case 1:
				powerOn++
			case 0:
				powerOff++
			}
		case obs.ProvMigration:
			migrations++
		case obs.ProvFault:
			faults++
		}
	}
	fmt.Fprintln(out, "\nwindow activity:")
	fmt.Fprintf(out, "  determinations %d%s\n", dets, causeSuffix(detCauses))
	fmt.Fprintf(out, "  decisions      %d moves (%d to cold), %d reclassifications, %d preload picks, %d write-delay picks\n",
		moves, toCold, reclass, preDec, desDec)
	fmt.Fprintf(out, "  runtime        %d spin-ups, %d power-ons, %d power-offs, %d migrations, %d destages, %d preloads\n",
		spinups, powerOn, powerOff, migrations, destages, preloads)
	fmt.Fprintf(out, "  faults         %d injected\n", faults)
}

// causeSuffix formats a cause histogram as " (causes: a x2, b x1)",
// sorted by count then name for a stable report.
func causeSuffix(causes map[string]int) string {
	if len(causes) == 0 {
		return ""
	}
	type kv struct {
		name string
		n    int
	}
	var list []kv
	for name, n := range causes {
		if name == "" {
			name = "none"
		}
		list = append(list, kv{name, n})
	}
	sort.Slice(list, func(a, b int) bool {
		if list[a].n != list[b].n {
			return list[a].n > list[b].n
		}
		return list[a].name < list[b].name
	})
	parts := make([]string, len(list))
	for i, c := range list {
		parts[i] = fmt.Sprintf("%s x%d", c.name, c.n)
	}
	return " (causes: " + strings.Join(parts, ", ") + ")"
}

// rootCause is one ranked candidate explanation.
type rootCause struct {
	name   string
	score  float64
	detail string
}

// renderRootCauses ranks candidate explanations of the window by their
// row counts. Injected faults are exogenous — they cause the spin-ups
// and migrations that follow — so the fault burst is weighted above
// the symptoms it produces.
func renderRootCauses(out io.Writer, win []obs.ProvRecord) {
	faultKinds := map[string]int{}
	spinCauses := map[string]int{}
	reclassN, migrN, destageN, preloadN := 0, 0, 0, 0
	faultEncs := map[int]int{}
	spinEncs := map[int]int{}
	for _, r := range win {
		switch r.Kind {
		case obs.ProvFault:
			faultKinds[r.Cause]++
			faultEncs[r.Src]++
		case obs.ProvPower:
			if r.Dst == 2 {
				spinCauses[r.Cause]++
				spinEncs[r.Src]++
			}
		case obs.ProvReclass:
			reclassN++
		case obs.ProvMigration:
			migrN++
		case obs.ProvDestage:
			if r.Det < 0 {
				destageN++
			}
		case obs.ProvPreload:
			if r.Det < 0 {
				preloadN++
			}
		}
	}
	var causes []rootCause
	if n := total(faultKinds); n > 0 {
		causes = append(causes, rootCause{
			name:  "fault burst",
			score: 2 * float64(n),
			detail: fmt.Sprintf("%d injected faults%s on enclosures %s",
				n, causeSuffix(faultKinds), encList(faultEncs)),
		})
	}
	if n := total(spinCauses); n > 0 {
		causes = append(causes, rootCause{
			name:  "spin-up storm",
			score: float64(n),
			detail: fmt.Sprintf("%d spin-up transitions%s on enclosures %s",
				n, causeSuffix(spinCauses), encList(spinEncs)),
		})
	}
	if reclassN > 0 {
		causes = append(causes, rootCause{"reclassification wave", float64(reclassN),
			fmt.Sprintf("%d items changed I/O-pattern class between determinations", reclassN)})
	}
	if migrN > 0 {
		causes = append(causes, rootCause{"migration surge", float64(migrN),
			fmt.Sprintf("%d migrations executed", migrN)})
	}
	if destageN > 0 {
		causes = append(causes, rootCause{"destage flush", float64(destageN),
			fmt.Sprintf("%d delayed writes destaged to disk", destageN)})
	}
	if preloadN > 0 {
		causes = append(causes, rootCause{"preload churn", float64(preloadN),
			fmt.Sprintf("%d items bulk-read into cache", preloadN)})
	}
	fmt.Fprintln(out, "\nroot causes (ranked):")
	if len(causes) == 0 {
		fmt.Fprintln(out, "  no decision or runtime activity in window")
		return
	}
	sort.Slice(causes, func(a, b int) bool {
		if causes[a].score != causes[b].score {
			return causes[a].score > causes[b].score
		}
		return causes[a].name < causes[b].name
	})
	for i, c := range causes {
		fmt.Fprintf(out, "  %d. %s: %s\n", i+1, c.name, c.detail)
	}
}

func total(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// encList formats an enclosure histogram as "2 x3, 5 x1", sorted by
// count then enclosure.
func encList(encs map[int]int) string {
	type kv struct{ enc, n int }
	var list []kv
	for e, n := range encs {
		list = append(list, kv{e, n})
	}
	sort.Slice(list, func(a, b int) bool {
		if list[a].n != list[b].n {
			return list[a].n > list[b].n
		}
		return list[a].enc < list[b].enc
	})
	parts := make([]string, len(list))
	for i, e := range list {
		parts[i] = fmt.Sprintf("%d x%d", e.enc, e.n)
	}
	return strings.Join(parts, ", ")
}

// renderEnclosures prints the per-enclosure window activity table,
// ranked by spin-ups, then faults, then enclosure number.
func renderEnclosures(out io.Writer, win []obs.ProvRecord, top int) {
	type encRow struct {
		spinups, faults, powerOn, powerOff, migIn, migOut int
	}
	rows := map[int]*encRow{}
	get := func(e int) *encRow {
		if e < 0 {
			return nil
		}
		r := rows[e]
		if r == nil {
			r = &encRow{}
			rows[e] = r
		}
		return r
	}
	for _, r := range win {
		switch r.Kind {
		case obs.ProvPower:
			if er := get(r.Src); er != nil {
				switch r.Dst {
				case 2:
					er.spinups++
				case 1:
					er.powerOn++
				case 0:
					er.powerOff++
				}
			}
		case obs.ProvFault:
			if er := get(r.Src); er != nil {
				er.faults++
			}
		case obs.ProvMigration:
			if er := get(r.Dst); er != nil {
				er.migIn++
			}
			if er := get(r.Src); er != nil {
				er.migOut++
			}
		}
	}
	if len(rows) == 0 {
		return
	}
	var encs []int
	for e := range rows {
		encs = append(encs, e)
	}
	sort.Slice(encs, func(a, b int) bool {
		ra, rb := rows[encs[a]], rows[encs[b]]
		if ra.spinups != rb.spinups {
			return ra.spinups > rb.spinups
		}
		if ra.faults != rb.faults {
			return ra.faults > rb.faults
		}
		return encs[a] < encs[b]
	})
	if len(encs) > top {
		encs = encs[:top]
	}
	fmt.Fprintln(out, "\ntop enclosures in window:")
	fmt.Fprintf(out, "  %4s %8s %7s %6s %6s %7s %8s\n", "enc", "spinups", "faults", "on", "off", "mig-in", "mig-out")
	for _, e := range encs {
		r := rows[e]
		fmt.Fprintf(out, "  %4d %8d %7d %6d %6d %7d %8d\n",
			e, r.spinups, r.faults, r.powerOn, r.powerOff, r.migIn, r.migOut)
	}
}

// renderHotItems joins the end-of-run energy attribution back to each
// item's decision chain over the whole ledger: the items that cost the
// most joules, and the determinations that put them where they are.
func renderHotItems(out io.Writer, recs []obs.ProvRecord, top int) {
	type itemAttr struct {
		item   int64
		joules float64
		class  int
		enc    int
	}
	attr := map[int64]*itemAttr{}
	for _, r := range recs {
		if r.Kind != obs.ProvAttrib {
			continue
		}
		ia := attr[r.Item]
		if ia == nil {
			ia = &itemAttr{item: r.Item, class: r.Class, enc: r.Src}
			attr[r.Item] = ia
		}
		ia.joules += r.Joules
	}
	if len(attr) == 0 {
		return
	}
	var items []*itemAttr
	for _, ia := range attr {
		items = append(items, ia)
	}
	sort.Slice(items, func(a, b int) bool {
		if items[a].joules != items[b].joules {
			return items[a].joules > items[b].joules
		}
		return items[a].item < items[b].item
	})
	if len(items) > top {
		items = items[:top]
	}
	fmt.Fprintln(out, "\ntop items by attributed joules (end-of-run energy ledger):")
	for _, ia := range items {
		fmt.Fprintf(out, "  item %-8d %-3s enc %-3d %10.1f J%s\n",
			ia.item, patternName(ia.class), ia.enc, ia.joules, decisionChain(recs, ia.item))
	}
}

// decisionChain summarizes one item's decision rows across the ledger.
func decisionChain(recs []obs.ProvRecord, item int64) string {
	var moves, reclass, preloads, destages int
	var lastMove, lastReclass *obs.ProvRecord
	for i := range recs {
		r := &recs[i]
		if r.Item != item {
			continue
		}
		switch r.Kind {
		case obs.ProvMove:
			moves++
			lastMove = r
		case obs.ProvReclass:
			reclass++
			lastReclass = r
		case obs.ProvPreload:
			preloads++
		case obs.ProvDestage:
			destages++
		}
	}
	if moves+reclass+preloads+destages == 0 {
		return "  (no decisions recorded)"
	}
	var parts []string
	if moves > 0 {
		s := fmt.Sprintf("%d moves", moves)
		if lastMove != nil {
			s += fmt.Sprintf(" (last %d->%d at %v, predicted %+.0f J)",
				lastMove.Src, lastMove.Dst, lastMove.T.Round(time.Second), lastMove.PredDJ)
		}
		parts = append(parts, s)
	}
	if reclass > 0 {
		s := fmt.Sprintf("%d reclass", reclass)
		if lastReclass != nil {
			s += fmt.Sprintf(" (last %s->%s at %v)",
				patternName(lastReclass.PrevClass), patternName(lastReclass.Class),
				lastReclass.T.Round(time.Second))
		}
		parts = append(parts, s)
	}
	if preloads > 0 {
		parts = append(parts, fmt.Sprintf("%d preloads", preloads))
	}
	if destages > 0 {
		parts = append(parts, fmt.Sprintf("%d destages", destages))
	}
	return "  " + strings.Join(parts, ", ")
}

// patternName formats a class code ("?" for unknown/-1).
func patternName(c int) string {
	if c < 0 || c > int(core.P3) {
		return "?"
	}
	return core.Pattern(c).String()
}
