// Rendering of saved telemetry event logs (esmd -events /
// esmbench -events): per-run determination summaries and per-enclosure
// power-state timelines.

package main

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"esm/internal/obs"
)

// coveredEventKinds records the renderer's decision for every telemetry
// event kind: true means the kind is rendered below (chronicle line,
// aggregate count or timeline); false means it is deliberately folded
// into a richer sibling event (a start event whose end event carries
// the full story). TestRendererCoversAllEventKinds fails when obs grows
// a kind with no entry here, so new telemetry cannot silently vanish
// from the renderer.
var coveredEventKinds = map[obs.EventType]bool{
	obs.EvDeterminationStart: false, // determination (end) carries the decision
	obs.EvDetermination:      true,
	obs.EvMigrationStart:     false, // migration_done carries src/dst/bytes
	obs.EvMigrationDone:      true,
	obs.EvMigrationSkip:      true,
	obs.EvMigrationFail:      true,
	obs.EvCacheSelect:        true,
	obs.EvCacheEvict:         false, // occupancy is visible in cache_select deltas
	obs.EvPowerOn:            true,
	obs.EvPowerOff:           true,
	obs.EvReplanTrigger:      true,
	obs.EvPeriodAdapt:        true,
	obs.EvFault:              true,
	obs.EvDegrade:            true,
	obs.EvAlert:              true,
}

func runEvents(out io.Writer, path, runLabel string, since, until time.Duration) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := obs.ReadEvents(f)
	if err != nil {
		return err
	}
	if len(events) == 0 {
		return fmt.Errorf("%s: no events", path)
	}
	if events = windowEvents(events, since, until); len(events) == 0 {
		return fmt.Errorf("%s: no events in the -since/-until window", path)
	}

	byRun := map[string][]obs.Event{}
	for _, ev := range events {
		byRun[ev.Run] = append(byRun[ev.Run], ev)
	}
	var runs []string
	for r := range byRun {
		runs = append(runs, r)
	}
	sort.Strings(runs)
	if runLabel != "" {
		if _, ok := byRun[runLabel]; !ok {
			return fmt.Errorf("run %q not in log (have: %s)", runLabel, strings.Join(runs, ", "))
		}
		runs = []string{runLabel}
	}
	for i, r := range runs {
		if i > 0 {
			fmt.Fprintln(out)
		}
		renderRun(out, r, byRun[r])
	}
	return nil
}

// windowEvents keeps the events inside the [since, until] simulated-
// time window; until <= 0 means "to the end of the log", the same
// semantics as the series window.
func windowEvents(events []obs.Event, since, until time.Duration) []obs.Event {
	if since <= 0 && until <= 0 {
		return events
	}
	var out []obs.Event
	for _, ev := range events {
		t := time.Duration(ev.T)
		if t < since || (until > 0 && t > until) {
			continue
		}
		out = append(out, ev)
	}
	return out
}

func renderRun(out io.Writer, run string, events []obs.Event) {
	name := run
	if name == "" {
		name = "(unlabelled)"
	}
	var span time.Duration
	for _, ev := range events {
		if d := time.Duration(ev.T); d > span {
			span = d
		}
	}
	fmt.Fprintf(out, "== %s: %d events over %v ==\n", name, len(events), span.Round(time.Second))

	// Determination-by-determination summary.
	fmt.Fprintln(out, "\ndeterminations:")
	for _, ev := range events {
		switch ev.Type {
		case obs.EvDetermination:
			d := ev.Determination
			hot := 0
			for _, h := range d.Hot {
				if h {
					hot++
				}
			}
			fmt.Fprintf(out, "  [%8v] #%-3d %-16s P0/P1/P2/P3 %d/%d/%d/%d  hot %d/%d  moves %-3d wdelay %-3d preload %-3d next period %v\n",
				time.Duration(ev.T).Round(time.Second), d.N, d.Cause,
				d.PatternCounts[0], d.PatternCounts[1], d.PatternCounts[2], d.PatternCounts[3],
				hot, len(d.Hot), d.Moves, d.WriteDelay, d.Preload,
				time.Duration(d.NextPeriodNS).Round(time.Second))
		case obs.EvReplanTrigger:
			t := ev.Replan
			switch t.Trigger {
			case obs.CauseTriggerInterval:
				fmt.Fprintf(out, "  [%8v] trigger i): enclosure %d interval %v > break-even %v\n",
					time.Duration(ev.T).Round(time.Second), t.Enclosure,
					time.Duration(t.IntervalNS).Round(time.Second),
					time.Duration(int64(t.Threshold)).Round(time.Second))
			default:
				fmt.Fprintf(out, "  [%8v] trigger ii): enclosure %d, %d cold spin-ups > m=%.1f\n",
					time.Duration(ev.T).Round(time.Second), t.Enclosure, t.SpinUps, t.Threshold)
			}
		case obs.EvPeriodAdapt:
			p := ev.Period
			fmt.Fprintf(out, "  [%8v] period %v -> %v\n",
				time.Duration(ev.T).Round(time.Second),
				time.Duration(p.OldNS).Round(time.Second), time.Duration(p.NewNS).Round(time.Second))
		case obs.EvDegrade:
			d := ev.Degrade
			if d.Entered {
				fmt.Fprintf(out, "  [%8v] degraded mode entered: %d faults in %v window\n",
					time.Duration(ev.T).Round(time.Second), d.Faults,
					time.Duration(d.WindowNS).Round(time.Second))
			} else {
				fmt.Fprintf(out, "  [%8v] degraded mode left: %d faults in window\n",
					time.Duration(ev.T).Round(time.Second), d.Faults)
			}
		case obs.EvAlert:
			a := ev.Alert
			fmt.Fprintf(out, "  [%8v] alert %s: %s -> %s (%s=%g, threshold %g)\n",
				time.Duration(ev.T).Round(time.Second), a.Rule, a.Prev, a.State,
				a.Signal, a.Value, a.Threshold)
		}
	}

	// Aggregate counts.
	var migDone, migSkip, migFail int
	var migBytes int64
	spinupsBy := map[obs.Cause]int{}
	faultsBy := map[string]int{}
	offs := 0
	cacheSel := map[string]int{}
	for _, ev := range events {
		switch ev.Type {
		case obs.EvMigrationDone:
			migDone++
			migBytes += ev.Migration.Bytes
		case obs.EvMigrationSkip:
			migSkip++
		case obs.EvMigrationFail:
			migFail++
		case obs.EvPowerOn:
			spinupsBy[ev.Power.Cause]++
		case obs.EvPowerOff:
			offs++
		case obs.EvCacheSelect:
			cacheSel[ev.Cache.Function] += len(ev.Cache.Items)
		case obs.EvFault:
			faultsBy[ev.Fault.Kind]++
		}
	}
	fmt.Fprintf(out, "\nmigrations: %d done (%.2f GB), %d skipped, %d failed\n",
		migDone, float64(migBytes)/(1<<30), migSkip, migFail)
	fmt.Fprintf(out, "power-offs: %d\n", offs)
	if len(spinupsBy) > 0 {
		var causes []string
		for c := range spinupsBy {
			causes = append(causes, string(c))
		}
		sort.Strings(causes)
		fmt.Fprint(out, "spin-ups:  ")
		for _, c := range causes {
			fmt.Fprintf(out, " %s=%d", c, spinupsBy[obs.Cause(c)])
		}
		fmt.Fprintln(out)
	}
	if n := cacheSel["write-delay"] + cacheSel["preload"]; n > 0 {
		fmt.Fprintf(out, "cache selections: write-delay=%d preload=%d\n", cacheSel["write-delay"], cacheSel["preload"])
	}
	if len(faultsBy) > 0 {
		var kinds []string
		for k := range faultsBy {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		fmt.Fprint(out, "injected faults:")
		for _, k := range kinds {
			fmt.Fprintf(out, " %s=%d", k, faultsBy[k])
		}
		fmt.Fprintln(out)
	}

	renderTimelines(out, events, span)
}

// renderTimelines draws one character strip per enclosure: '#' on,
// '.' off, '^' spinning up, sampled at the start of each column.
func renderTimelines(out io.Writer, events []obs.Event, span time.Duration) {
	segs := timelinesOf(events)
	if len(segs) == 0 || span <= 0 {
		return
	}
	const cols = 64
	fmt.Fprintf(out, "\npower timelines (%v per column; '#'=on '.'=off '^'=spin-up):\n", (span / cols).Round(time.Second))
	encs := make([]int, 0, len(segs))
	for e := range segs {
		encs = append(encs, e)
	}
	sort.Ints(encs)
	for _, e := range encs {
		strip := make([]byte, cols)
		for c := 0; c < cols; c++ {
			at := span * time.Duration(c) / cols
			if stateAt(segs[e], at) == "off" {
				strip[c] = '.'
			} else {
				strip[c] = '#'
			}
		}
		// Overlay one '^' at the column each spin-up lands in; its true
		// duration (the spin-up time) is not in the log.
		for _, s := range segs[e] {
			if s.State == "spinup" {
				c := int(int64(s.T) * cols / int64(span))
				if c >= cols {
					c = cols - 1
				}
				strip[c] = '^'
			}
		}
		off := obs.OffTime(segs[e], span)
		fmt.Fprintf(out, "  enc %-3d %s  %.0f%% off\n", e, strip, 100*off.Seconds()/span.Seconds())
	}
}

// timelinesOf reconstructs per-enclosure power segments from the power
// events of one run. Enclosures start "on"; a power_on event marks the
// start of the spin-up.
func timelinesOf(events []obs.Event) map[int][]obs.Segment {
	segs := map[int][]obs.Segment{}
	for _, ev := range events {
		if ev.Type != obs.EvPowerOn && ev.Type != obs.EvPowerOff {
			continue
		}
		p := ev.Power
		segs[p.Enclosure] = append(segs[p.Enclosure], obs.Segment{
			T: time.Duration(ev.T), State: p.State, Cause: p.Cause,
		})
	}
	return segs
}

// stateAt returns "on" or "off" at time at, given the time-ordered
// transition segments. Before the first transition the enclosure is on;
// a spin-up counts as on from its start.
func stateAt(segs []obs.Segment, at time.Duration) string {
	state := "on"
	for _, s := range segs {
		if s.T > at {
			break
		}
		if s.State == "off" {
			state = "off"
		} else {
			state = "on"
		}
	}
	return state
}
