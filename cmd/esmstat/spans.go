// Rendering of saved Perfetto span traces (esmbench -trace /
// esmd -trace): the latency breakdown and energy-attribution summaries
// embedded in the file's otherData, so a trace file alone answers
// "where did the time go" and "where did the joules go".

package main

import (
	"fmt"
	"io"
	"os"
	"sort"

	"esm/internal/obs"
)

func loadPerfetto(path string) (*obs.PerfettoFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return obs.ReadPerfetto(f)
}

// runLatency renders the per-cause and per-phase latency breakdown of
// one trace file.
func runLatency(out io.Writer, path string) error {
	pf, err := loadPerfetto(path)
	if err != nil {
		return err
	}
	if pf.OtherData == nil || pf.OtherData.Latency == nil {
		return fmt.Errorf("%s: no latency summary (written by a tracer without I/O spans?)", path)
	}
	sum := pf.OtherData.Latency
	label := pf.OtherData.Label
	if label == "" {
		label = path
	}
	fmt.Fprintf(out, "== %s: latency breakdown (%d application I/Os) ==\n", label, sum.Total.Count)
	w := func(kind string, r obs.LatencyRow) {
		fmt.Fprintf(out, "  %-22s %10d  mean %10v  p50 %10v  p95 %10v  p99 %10v  max %10v\n",
			kind+":"+r.Name, r.Count, r.Mean, r.P50, r.P95, r.P99, r.Max)
	}
	w("all", sum.Total)
	fmt.Fprintln(out, "\nby serve cause (response time):")
	for _, r := range sum.ByCause {
		w("cause", r)
	}
	fmt.Fprintln(out, "\nby phase (time spent in the phase):")
	for _, r := range sum.ByPhase {
		w("phase", r)
	}
	return nil
}

// runAttrib renders the energy attribution of one trace file: joules
// per pattern class, per management function and per enclosure, with
// the top items of each enclosure.
func runAttrib(out io.Writer, path string, top int) error {
	pf, err := loadPerfetto(path)
	if err != nil {
		return err
	}
	if pf.OtherData == nil || pf.OtherData.Attribution == nil {
		return fmt.Errorf("%s: no energy attribution (written by a tracer without a ledger?)", path)
	}
	a := pf.OtherData.Attribution
	label := pf.OtherData.Label
	if label == "" {
		label = path
	}
	fmt.Fprintf(out, "== %s: energy attribution (%.1f J total) ==\n", label, a.TotalJ)
	share := func(j float64) float64 {
		if a.TotalJ <= 0 {
			return 0
		}
		return 100 * j / a.TotalJ
	}
	fmt.Fprintln(out, "\nby pattern class:")
	for c := 0; c < len(a.ByClass); c++ {
		fmt.Fprintf(out, "  %-10s %12.1f J  %5.1f%%\n", obs.ClassName(c), a.ByClass[c], share(a.ByClass[c]))
	}
	fmt.Fprintln(out, "\nby management function:")
	for fn := obs.EnergyFunc(0); fn < obs.EnergyFuncCount; fn++ {
		fmt.Fprintf(out, "  %-10s %12.1f J  %5.1f%%\n", fn.String(), a.ByFunc[fn], share(a.ByFunc[fn]))
	}
	fmt.Fprintf(out, "\nunattributed: %.1f J (%.1f%%)\n", a.UnattributedJ, share(a.UnattributedJ))
	fmt.Fprintln(out, "\nper enclosure:")
	for _, e := range a.Enclosures {
		fmt.Fprintf(out, "  enclosure %-3d %12.1f J  %5.1f%%\n", e.Enclosure, e.TotalJ, share(e.TotalJ))
		items := append([]obs.ItemEnergy(nil), e.ByItem...)
		sort.SliceStable(items, func(i, j int) bool { return items[i].Joules > items[j].Joules })
		for i, it := range items {
			if i >= top {
				break
			}
			name := fmt.Sprintf("item %d", it.Item)
			if it.Item == obs.UnattributedItem {
				name = "(unattributed)"
			}
			fmt.Fprintf(out, "    %-20s %-8s %12.1f J\n", name, obs.ClassName(obs.ClassIndex(it.Class)), it.Joules)
		}
	}
	return nil
}
