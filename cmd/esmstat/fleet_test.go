package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"esm/internal/fleet"
	"esm/internal/trace"
)

// fleetFixture runs a tiny two-array fleet to completion and returns
// its HTTP control plane.
func fleetFixture(t *testing.T) *httptest.Server {
	t.Helper()
	newSpec := func(name string) fleet.ArraySpec {
		cat := trace.NewCatalog()
		cat.Add("a", 1<<30)
		cat.Add("b", 1<<30)
		return fleet.ArraySpec{Name: name, Catalog: cat, Placement: []int{0, 1}}
	}
	f, err := fleet.New(fleet.Options{Specs: []fleet.ArraySpec{newSpec("east"), newSpec("west")}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	for _, name := range []string{"east", "west"} {
		a := f.Array(name)
		for i := 0; i < 200; i++ {
			rec := trace.LogicalRecord{
				Time: time.Duration(i) * time.Second, Item: trace.ItemID(i % 2),
				Offset: 0, Size: 4096, Op: trace.OpRead,
			}
			if err := a.Feed(rec); err != nil {
				t.Fatal(err)
			}
		}
		if err := a.Finish(); err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(f.Handler())
	t.Cleanup(srv.Close)
	return srv
}

func TestFleetSubcommandAgainstLiveServer(t *testing.T) {
	srv := fleetFixture(t)
	var out bytes.Buffer
	violated, err := runFleet(&out, []string{srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	if violated {
		t.Fatalf("conservation violated on a healthy fleet:\n%s", out.String())
	}
	text := out.String()
	for _, want := range []string{"fleet of 2 arrays", "east", "west", "FLEET", "conservation OK"} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}
}

func TestFleetSubcommandFromFile(t *testing.T) {
	srv := fleetFixture(t)
	var roll fleet.Rollup
	if err := fetchJSON(srv.URL+"/fleet", &roll); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "rollup.json")
	data, err := json.Marshal(roll)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	violated, err := runFleet(&out, []string{path})
	if err != nil {
		t.Fatal(err)
	}
	if violated {
		t.Fatalf("violation from saved payload:\n%s", out.String())
	}
}

func TestFleetSubcommandDetectsViolation(t *testing.T) {
	srv := fleetFixture(t)
	var roll fleet.Rollup
	if err := fetchJSON(srv.URL+"/fleet", &roll); err != nil {
		t.Fatal(err)
	}
	roll.Fleet.MeteredJ *= 1.0001 // corrupt the conserved total
	var out bytes.Buffer
	violated, err := reportFleet(&out, roll, nil, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if !violated {
		t.Fatalf("corrupted total passed:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "CONSERVATION VIOLATION") {
		t.Fatalf("violation not reported:\n%s", out.String())
	}
	// A looser tolerance accepts the same payload.
	violated, err = reportFleet(&out, roll, nil, 1e-2)
	if err != nil || violated {
		t.Fatalf("tolerance not honored: violated=%v err=%v", violated, err)
	}
}

func TestFleetSubcommandUsageErrors(t *testing.T) {
	var out bytes.Buffer
	if _, err := runFleet(&out, nil); err == nil {
		t.Error("no target accepted")
	}
	if _, err := runFleet(&out, []string{filepath.Join(t.TempDir(), "missing.json")}); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := reportFleet(&out, fleet.Rollup{}, nil, 1e-9); err == nil {
		t.Error("empty roll-up accepted")
	}
}
