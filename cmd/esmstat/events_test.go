package main

import (
	"strings"
	"testing"
	"time"

	"esm/internal/obs"
)

// TestRendererCoversAllEventKinds pins the renderer's coverage to the
// full telemetry vocabulary: every event kind obs can emit needs an
// explicit decision in coveredEventKinds (rendered, or deliberately
// folded into a sibling). Adding a kind to obs without deciding how
// esmstat shows it fails here.
func TestRendererCoversAllEventKinds(t *testing.T) {
	for _, kind := range obs.AllEventTypes() {
		if _, ok := coveredEventKinds[kind]; !ok {
			t.Errorf("event kind %q has no rendering decision in coveredEventKinds", kind)
		}
	}
	for kind := range coveredEventKinds {
		found := false
		for _, k := range obs.AllEventTypes() {
			if k == kind {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("coveredEventKinds lists %q, which obs no longer emits", kind)
		}
	}
}

// TestRenderRunShowsEveryRenderedKind feeds one event of every kind
// through the renderer and checks each kind marked rendered leaves a
// visible mark in the output.
func TestRenderRunShowsEveryRenderedKind(t *testing.T) {
	events := []obs.Event{
		{T: 1e9, Type: obs.EvDeterminationStart, Determination: &obs.DeterminationEvent{N: 1, Cause: "period-end"}},
		{T: 2e9, Type: obs.EvDetermination, Determination: &obs.DeterminationEvent{
			N: 1, Cause: "period-end", PatternCounts: [4]int{3, 2, 1, 0},
			Hot: []bool{true, false}, Moves: 2, WriteDelay: 1, Preload: 1, NextPeriodNS: 60e9,
		}},
		{T: 3e9, Type: obs.EvMigrationStart, Migration: &obs.MigrationEvent{Item: 7, Src: 0, Dst: 1}},
		{T: 4e9, Type: obs.EvMigrationDone, Migration: &obs.MigrationEvent{Item: 7, Src: 0, Dst: 1, Bytes: 1 << 30}},
		{T: 5e9, Type: obs.EvMigrationSkip, Migration: &obs.MigrationEvent{Item: 8, Src: -1, Dst: 1}},
		{T: 6e9, Type: obs.EvMigrationFail, Migration: &obs.MigrationEvent{Item: 9, Src: 0, Dst: 1}},
		{T: 7e9, Type: obs.EvCacheSelect, Cache: &obs.CacheEvent{Function: "preload", Items: []int64{1, 2}}},
		{T: 8e9, Type: obs.EvCacheEvict, Cache: &obs.CacheEvent{Function: "preload", Items: []int64{1}}},
		{T: 9e9, Type: obs.EvPowerOn, Power: &obs.PowerEvent{Enclosure: 1, State: "spinup", Cause: "app-io"}},
		{T: 10e9, Type: obs.EvPowerOff, Power: &obs.PowerEvent{Enclosure: 1, State: "off", Cause: "policy"}},
		{T: 11e9, Type: obs.EvReplanTrigger, Replan: &obs.ReplanEvent{Trigger: obs.CauseTriggerInterval, Enclosure: 0, IntervalNS: 90e9, Threshold: 52e9}},
		{T: 12e9, Type: obs.EvPeriodAdapt, Period: &obs.PeriodEvent{OldNS: 60e9, NewNS: 120e9}},
		{T: 13e9, Type: obs.EvFault, Fault: &obs.FaultEvent{Kind: "spinup", Enclosure: 1, Attempt: 1}},
		{T: 14e9, Type: obs.EvDegrade, Degrade: &obs.DegradeEvent{Entered: true, Faults: 5, WindowNS: 300e9}},
		{T: 15e9, Type: obs.EvAlert, Alert: &obs.AlertEvent{
			Rule: "budget", State: "firing", Prev: "pending",
			Signal: "total_energy_j", Value: 2e6, Threshold: 1.5e6, SinceNS: 10e9,
		}},
	}
	// The fixture must exercise the full vocabulary, or the coverage
	// claim below is hollow.
	have := map[obs.EventType]bool{}
	for _, ev := range events {
		have[ev.Type] = true
	}
	for _, kind := range obs.AllEventTypes() {
		if !have[kind] {
			t.Fatalf("fixture is missing an event of kind %q", kind)
		}
	}

	var sb strings.Builder
	renderRun(&sb, "test", events)
	out := sb.String()
	for want, why := range map[string]string{
		"#1":                              "determination line",
		"1 done (1.00 GB)":                "migration aggregate",
		"1 skipped, 1 failed":             "migration skip/fail aggregate",
		"preload=2":                       "cache selection aggregate",
		"app-io=1":                        "spin-up cause aggregate",
		"power-offs: 1":                   "power-off aggregate",
		"trigger i)":                      "replan trigger line",
		"period 1m0s -> 2m0s":             "period adaptation line",
		"spinup=1":                        "fault aggregate",
		"degraded mode entered":           "degrade chronicle line",
		"alert budget: pending -> firing": "alert transition line",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %s (%q):\n%s", why, want, out)
		}
	}
}

// TestWindowEvents pins the -since/-until semantics: inclusive bounds,
// until <= 0 unbounded, and the no-window case returns the input as-is.
func TestWindowEvents(t *testing.T) {
	var events []obs.Event
	for i := 0; i <= 10; i++ {
		events = append(events, obs.Event{T: int64(i) * int64(time.Second), Type: obs.EvPowerOff,
			Power: &obs.PowerEvent{Enclosure: i, State: "off", Cause: "policy"}})
	}
	if got := windowEvents(events, 0, 0); len(got) != len(events) {
		t.Fatalf("no-op window dropped events: %d of %d", len(got), len(events))
	}
	got := windowEvents(events, 3*time.Second, 7*time.Second)
	if len(got) != 5 || got[0].Power.Enclosure != 3 || got[4].Power.Enclosure != 7 {
		t.Fatalf("window [3s,7s] kept %d events, first/last %+v %+v", len(got), got[0].Power, got[len(got)-1].Power)
	}
	if got := windowEvents(events, 8*time.Second, 0); len(got) != 3 {
		t.Fatalf("open-ended window kept %d events, want 3", len(got))
	}
	if got := windowEvents(events, 20*time.Second, 0); got != nil {
		t.Fatalf("empty window returned %d events", len(got))
	}
}

// TestRenderRunWindowed: the renderer over a windowed slice only shows
// what is inside the window.
func TestRenderRunWindowed(t *testing.T) {
	events := []obs.Event{
		{T: 2e9, Type: obs.EvDetermination, Determination: &obs.DeterminationEvent{
			N: 1, Cause: "period-end", Hot: []bool{}, NextPeriodNS: 60e9}},
		{T: 600e9, Type: obs.EvDetermination, Determination: &obs.DeterminationEvent{
			N: 2, Cause: "period-end", Hot: []bool{}, NextPeriodNS: 60e9}},
	}
	var sb strings.Builder
	renderRun(&sb, "w", windowEvents(events, 0, 10*time.Second))
	out := sb.String()
	if !strings.Contains(out, "#1") || strings.Contains(out, "#2") {
		t.Fatalf("windowed render wrong:\n%s", out)
	}
}
