// The alerts subcommand: render watchdog alert state, either live from
// a running esmd control plane (GET /alerts) or reconstructed from a
// saved telemetry event log (the alert transition events in an esmd/
// esmbench -events JSONL file). Exits 1 when any rule is firing at the
// end — the CI gate for energy/SLO budget rules.

package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"esm/internal/fleet"
	"esm/internal/obs"
)

// runAlerts implements `esmstat alerts <url-or-file>`. The returned
// bool is true when any rule is firing at the end of the log (or right
// now, against a live control plane) — the caller exits 1.
func runAlerts(out io.Writer, args []string) (firing bool, err error) {
	fs := flag.NewFlagSet("esmstat alerts", flag.ExitOnError)
	runLabel := fs.String("run", "", "with an events file: only render the stream with this run label")
	if err := fs.Parse(args); err != nil {
		return false, err
	}
	if fs.NArg() != 1 {
		return false, fmt.Errorf("usage: esmstat alerts [-run LABEL] <http://host:port | events.jsonl>")
	}
	target := fs.Arg(0)
	if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") {
		var rep fleet.AlertsReport
		if err := fetchJSON(strings.TrimRight(target, "/")+"/alerts", &rep); err != nil {
			return false, err
		}
		return renderAlertsReport(out, rep), nil
	}
	return renderAlertsLog(out, target, *runLabel)
}

// renderAlertsReport prints a live /alerts payload: the fleet-wide
// budget rules first, then every array's rules, then the verdict.
func renderAlertsReport(out io.Writer, rep fleet.AlertsReport) (firing bool) {
	s := rep.Summary
	fmt.Fprintf(out, "alerts: %d rules, %d firing, %d pending, %d fired, %d transitions\n",
		s.Rules, s.Firing, s.Pending, s.Fired, s.Transitions)
	if len(rep.Fleet) > 0 {
		fmt.Fprintln(out, "fleet:")
		printStatuses(out, rep.Fleet)
	}
	var names []string
	for name := range rep.Arrays {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(out, "array %s:\n", name)
		printStatuses(out, rep.Arrays[name])
	}
	if s.Firing > 0 {
		fmt.Fprintf(out, "FIRING: %d rule(s)\n", s.Firing)
		return true
	}
	fmt.Fprintln(out, "no alerts firing")
	return false
}

func printStatuses(out io.Writer, sts []obs.AlertStatus) {
	for _, st := range sts {
		fmt.Fprintf(out, "  %-44s %-8s value %g, threshold %g, fired %d, transitions %d\n",
			st.Spec, st.State, st.Value, st.Threshold, st.Fired, st.Transitions)
	}
}

// renderAlertsLog replays the alert transition events of a saved
// telemetry log: the chronicle per run, then each rule's final state.
func renderAlertsLog(out io.Writer, path, runLabel string) (firing bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	events, err := obs.ReadEvents(f)
	if err != nil {
		return false, err
	}
	byRun := map[string][]obs.Event{}
	for _, ev := range events {
		if ev.Type != obs.EvAlert {
			continue
		}
		byRun[ev.Run] = append(byRun[ev.Run], ev)
	}
	if len(byRun) == 0 {
		return false, fmt.Errorf("%s: no alert events (was the run started with -alerts?)", path)
	}
	var runs []string
	for r := range byRun {
		runs = append(runs, r)
	}
	sort.Strings(runs)
	if runLabel != "" {
		if _, ok := byRun[runLabel]; !ok {
			return false, fmt.Errorf("run %q has no alert events (have: %s)", runLabel, strings.Join(runs, ", "))
		}
		runs = []string{runLabel}
	}
	for i, r := range runs {
		if i > 0 {
			fmt.Fprintln(out)
		}
		if renderAlertRun(out, r, byRun[r]) {
			firing = true
		}
	}
	if firing {
		fmt.Fprintln(out, "FIRING at end of log")
	} else {
		fmt.Fprintln(out, "no alerts firing at end of log")
	}
	return firing, nil
}

// renderAlertRun prints one run's alert transitions and final states;
// it reports whether any rule ends the log in the firing state.
func renderAlertRun(out io.Writer, run string, events []obs.Event) (firing bool) {
	name := run
	if name == "" {
		name = "(unlabelled)"
	}
	fmt.Fprintf(out, "== %s: %d alert transitions ==\n", name, len(events))
	final := map[string]string{}
	fired := map[string]int{}
	var rules []string
	for _, ev := range events {
		a := ev.Alert
		if _, seen := final[a.Rule]; !seen {
			rules = append(rules, a.Rule)
		}
		final[a.Rule] = a.State
		if a.State == string(obs.AlertFiring) {
			fired[a.Rule]++
		}
		fmt.Fprintf(out, "  [%8v] %-20s %s -> %s  (%s=%g, threshold %g)\n",
			time.Duration(ev.T).Round(time.Second), a.Rule, a.Prev, a.State,
			a.Signal, a.Value, a.Threshold)
	}
	sort.Strings(rules)
	for _, r := range rules {
		fmt.Fprintf(out, "  %-20s final %-8s fired %d\n", r, final[r], fired[r])
		if final[r] == string(obs.AlertFiring) {
			firing = true
		}
	}
	return firing
}
