// Command esmstat inspects a logical trace: it prints the whole-trace
// summary, the logical I/O pattern distribution (the Fig. 6 analysis for
// an arbitrary trace), and the per-pattern top data items.
//
// It also renders saved telemetry event logs (the JSONL streams written
// by esmd -events and esmbench -events): a determination-by-
// determination summary plus per-enclosure power-state timelines.
//
// The latency and attrib subcommands render the span traces written by
// esmbench -trace and esmd -trace (Perfetto trace-event JSON): the
// per-phase/per-cause latency breakdown and the per-class/per-function
// energy attribution embedded in the file.
//
// The series subcommand summarizes a flight-recorder series CSV
// (esmbench -series / esmd -series), and diff compares two run
// manifests (BENCH_*.json) with relative regression thresholds,
// exiting 1 when a gated signal crosses its threshold — the CI
// regression gate.
//
// The fleet subcommand queries a running esmd control plane (or reads
// a saved /fleet payload) and renders the fleet-wide energy, cost and
// carbon roll-up, exiting 1 if the fleet joules fail to conserve the
// summed per-array meters to the tolerance.
//
// The alerts subcommand renders watchdog alert state — live from a
// control plane's /alerts endpoint or reconstructed from the alert
// transition events of a saved -events log — and exits 1 when any rule
// is firing at the end: the CI gate for energy/SLO budget rules.
//
// The explain subcommand turns a decision-provenance ledger
// (esmbench/esmreplay -provenance) into a ranked root-cause report for
// a time window or an alert firing; diff -series time-aligns two
// flight-series CSVs and locates the first divergence window per
// signal, the input explain wants.
//
// Usage:
//
//	esmstat -trace fs.trace -catalog fs.items [-break-even 52s] [-top 5]
//	esmstat -events events.jsonl [-run fileserver/esm] [-since 10m] [-until 1h]
//	esmstat events [-run fileserver/esm] [-since 10m] [-until 1h] events.jsonl
//	esmstat latency run.trace.json
//	esmstat attrib [-top 3] run.trace.json
//	esmstat series [-since 10m] [-until 1h] [-csv] fileserver-esm.series.csv
//	esmstat diff [-energy 0.05] [-resp 0.1] [-alerts 0] baseline.json new.json
//	esmstat diff -series [-tol 1e-9] baseline.series.csv new.series.csv
//	esmstat explain [-alert RULE -events LOG | -since D -until D] run.prov.csv
//	esmstat fleet [-tol 1e-9] http://localhost:9090
//	esmstat alerts http://localhost:9090
//	esmstat alerts [-run fileserver/esm] events.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"esm/internal/core"
	"esm/internal/monitor"
	"esm/internal/obs"
	"esm/internal/trace"
)

// subcommandHelp lists every subcommand with a one-line brief, in the
// order usage prints them. The usage test pins this list — adding a
// subcommand without documenting it here fails the build.
var subcommandHelp = []struct{ name, brief string }{
	{"alerts", "render watchdog alert state (live /alerts or a saved -events log); exits 1 if firing"},
	{"attrib", "per-class/per-function energy attribution from a span trace (esmbench -trace)"},
	{"diff", "compare two BENCH manifests; -series locates the first divergence of two series CSVs"},
	{"events", "render a saved telemetry event log (also reachable as the -events flag)"},
	{"explain", "ranked root-cause report over a decision-provenance ledger (-provenance .prov.csv)"},
	{"fleet", "fleet energy/cost/carbon roll-up from a control plane URL or saved payload"},
	{"latency", "per-phase/per-cause latency breakdown from a span trace"},
	{"series", "summarize or re-emit a flight-recorder series CSV, optionally windowed"},
}

// usage prints the top-level synopsis and the subcommand table.
func usage(out io.Writer) {
	fmt.Fprintln(out, "usage: esmstat <subcommand> [flags] [args]")
	fmt.Fprintln(out, "       esmstat -trace T -catalog C [-break-even D] [-top N]   (trace analysis)")
	fmt.Fprintln(out, "       esmstat -events LOG [-run LABEL] [-since D] [-until D] (event-log rendering)")
	fmt.Fprintln(out, "subcommands:")
	for _, sc := range subcommandHelp {
		fmt.Fprintf(out, "  %-8s %s\n", sc.name, sc.brief)
	}
	fmt.Fprintln(out, "run \"esmstat <subcommand> -h\" for each subcommand's flags")
}

func main() {
	if len(os.Args) > 1 && !strings.HasPrefix(os.Args[1], "-") {
		switch os.Args[1] {
		case "latency", "attrib":
			if err := runSpanCommand(os.Args[1], os.Args[2:]); err != nil {
				fmt.Fprintln(os.Stderr, "esmstat:", err)
				os.Exit(1)
			}
			return
		case "series":
			if err := runSeries(os.Args[2:]); err != nil {
				fmt.Fprintln(os.Stderr, "esmstat:", err)
				os.Exit(1)
			}
			return
		case "events":
			if err := runEventsCommand(os.Args[2:]); err != nil {
				fmt.Fprintln(os.Stderr, "esmstat:", err)
				os.Exit(1)
			}
			return
		case "explain":
			if err := runExplain(os.Stdout, os.Args[2:]); err != nil {
				fmt.Fprintln(os.Stderr, "esmstat:", err)
				os.Exit(1)
			}
			return
		case "diff":
			regressed, err := runDiff(os.Args[2:])
			if err != nil {
				fmt.Fprintln(os.Stderr, "esmstat:", err)
				os.Exit(2)
			}
			if regressed {
				os.Exit(1)
			}
			return
		case "fleet":
			violated, err := runFleet(os.Stdout, os.Args[2:])
			if err != nil {
				fmt.Fprintln(os.Stderr, "esmstat:", err)
				os.Exit(2)
			}
			if violated {
				os.Exit(1)
			}
			return
		case "alerts":
			firing, err := runAlerts(os.Stdout, os.Args[2:])
			if err != nil {
				fmt.Fprintln(os.Stderr, "esmstat:", err)
				os.Exit(2)
			}
			if firing {
				os.Exit(1)
			}
			return
		case "help":
			usage(os.Stdout)
			return
		default:
			fmt.Fprintf(os.Stderr, "esmstat: unknown subcommand %q\n", os.Args[1])
			usage(os.Stderr)
			os.Exit(2)
		}
	}
	tracePath := flag.String("trace", "", "binary trace path")
	catalogPath := flag.String("catalog", "", "catalog path")
	breakEven := flag.Duration("break-even", 52*time.Second, "break-even time for Long Intervals")
	top := flag.Int("top", 5, "items to list per pattern")
	eventsPath := flag.String("events", "", "telemetry event log (JSONL) to render instead of a trace")
	runLabel := flag.String("run", "", "with -events: only render the stream with this run label")
	since, until := addWindowFlags(flag.CommandLine)
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(obs.VersionString("esmstat"))
		return
	}

	if *eventsPath != "" {
		if err := runEvents(os.Stdout, *eventsPath, *runLabel, *since, *until); err != nil {
			fmt.Fprintln(os.Stderr, "esmstat:", err)
			os.Exit(1)
		}
		return
	}
	if *tracePath == "" || *catalogPath == "" {
		fmt.Fprintln(os.Stderr, "esmstat: -trace and -catalog are required (or use -events)")
		os.Exit(2)
	}
	if err := run(*tracePath, *catalogPath, *breakEven, *top); err != nil {
		fmt.Fprintln(os.Stderr, "esmstat:", err)
		os.Exit(1)
	}
}

// runEventsCommand is the subcommand form of event-log rendering, the
// same renderer the legacy -events flag drives.
func runEventsCommand(args []string) error {
	fs := flag.NewFlagSet("esmstat events", flag.ExitOnError)
	runLabel := fs.String("run", "", "only render the stream with this run label")
	since, until := addWindowFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: esmstat events [-run LABEL] [-since D] [-until D] <events.jsonl>")
	}
	return runEvents(os.Stdout, fs.Arg(0), *runLabel, *since, *until)
}

// runSpanCommand dispatches the latency/attrib subcommands over a
// Perfetto span-trace file.
func runSpanCommand(cmd string, args []string) error {
	fs := flag.NewFlagSet("esmstat "+cmd, flag.ExitOnError)
	top := fs.Int("top", 3, "items to list per enclosure (attrib only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: esmstat %s [-top N] <trace.json>", cmd)
	}
	path := fs.Arg(0)
	if cmd == "latency" {
		return runLatency(os.Stdout, path)
	}
	return runAttrib(os.Stdout, path, *top)
}

func run(tracePath, catalogPath string, breakEven time.Duration, top int) error {
	tf, err := os.Open(tracePath)
	if err != nil {
		return err
	}
	defer tf.Close()
	recs, err := trace.ReadBinary(tf)
	if err != nil {
		return err
	}
	cf, err := os.Open(catalogPath)
	if err != nil {
		return err
	}
	defer cf.Close()
	cat, err := trace.ReadCatalog(cf)
	if err != nil {
		return err
	}

	sum := trace.Summarize(recs)
	fmt.Println("trace:", sum)

	mon := monitor.NewAppMonitor(cat.Len(), breakEven)
	for _, rec := range recs {
		mon.Record(rec)
	}
	end := sum.End
	stats := mon.EndPeriod(end)
	mix := core.MixOf(stats)
	fmt.Printf("patterns (break-even %v): %s\n", breakEven, mix)

	byPattern := map[core.Pattern][]monitor.ItemPeriodStats{}
	for _, s := range stats {
		byPattern[core.Classify(s)] = append(byPattern[core.Classify(s)], s)
	}
	for p := core.P0; p <= core.P3; p++ {
		items := byPattern[p]
		sort.Slice(items, func(a, b int) bool { return items[a].Count > items[b].Count })
		fmt.Printf("\n%s (%d items):\n", p, len(items))
		for i, s := range items {
			if i >= top {
				break
			}
			fmt.Printf("  %-32s %8d I/Os  %5.1f%% reads  %3d long intervals  %6.2f avg IOPS\n",
				cat.Name(s.Item), s.Count, pct(s.Reads, s.Count), s.LongIntervals, s.AvgIOPS)
		}
	}
	return nil
}

func pct(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
