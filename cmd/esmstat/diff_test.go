package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"esm/internal/experiments"
	"esm/internal/obs"
)

func manifestFixture() experiments.Manifest {
	return experiments.Manifest{
		Workload: "fileserver", Policy: "esm", Scale: 0.1,
		ConfigHash: "abc123def456", GoVersion: "go1.x", Date: "2026-01-01",
		Totals: experiments.ManifestTotals{
			EnergyJ: 1000, AvgEnclosureW: 100, AvgTotalW: 120,
			RespMeanUs: 5000, RespP95Us: 20000,
			SpinUps: 10, Migrations: 5, MigratedBytes: 1 << 30,
		},
	}
}

// TestRunDiffRegressionExit: a >=10% energy regression must come back
// regressed (the caller exits 1) and be marked in the output, while a
// same-totals diff reports no regression.
func TestRunDiffRegressionExit(t *testing.T) {
	dir := t.TempDir()
	a := manifestFixture()
	b := manifestFixture()
	b.Totals.EnergyJ *= 1.10
	aPath := filepath.Join(dir, "a.json")
	bPath := filepath.Join(dir, "b.json")
	if err := a.WriteFile(aPath); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteFile(bPath); err != nil {
		t.Fatal(err)
	}

	regressed, err := runDiff([]string{aPath, bPath})
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatal("10% energy regression not flagged at the 5% default gate")
	}
	// The same regression passes a loose 25% gate.
	regressed, err = runDiff([]string{"-energy", "0.25", aPath, bPath})
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatal("10% energy delta flagged at a 25% gate")
	}
	// Identical manifests: no regression.
	regressed, err = runDiff([]string{aPath, aPath})
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatal("identical manifests flagged as regression")
	}
}

func TestRenderDiffOutput(t *testing.T) {
	a := manifestFixture()
	b := manifestFixture()
	b.Totals.EnergyJ *= 1.10
	b.ConfigHash = "fff000fff000"
	d := experiments.DiffManifests(a, b, experiments.DefaultDiffThresholds())
	var sb strings.Builder
	renderDiff(&sb, a, b, d)
	out := sb.String()
	for want, why := range map[string]string{
		"energy_j":    "signal row",
		"+10.0%":      "relative delta",
		"REGRESSION":  "regression marker",
		"warning:":    "config hash mismatch warning",
		"resp_p95_us": "response signal row",
		"spin_ups":    "spin-up signal row",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output missing %s (%q):\n%s", why, want, out)
		}
	}
	if strings.Contains(out, "no regression") {
		t.Errorf("regressed diff printed the all-clear line:\n%s", out)
	}

	var clean strings.Builder
	renderDiff(&clean, a, a, experiments.DiffManifests(a, a, experiments.DefaultDiffThresholds()))
	if !strings.Contains(clean.String(), "no regression") {
		t.Errorf("clean diff missing the all-clear line:\n%s", clean.String())
	}
}

func TestRenderSeriesSummary(t *testing.T) {
	fr := obs.NewFlightRecorder(obs.FlightOptions{Interval: time.Second})
	for i := 0; i <= 5; i++ {
		fr.Record(obs.FlightSample{T: time.Duration(i) * time.Second, EnclosureEnergyJ: float64(i) * 10})
	}
	var sb strings.Builder
	renderSeries(&sb, fr.Series())
	out := sb.String()
	if !strings.Contains(out, "6 samples") {
		t.Errorf("series summary missing the sample count:\n%s", out)
	}
	if !strings.Contains(out, "enclosure_energy_j") || !strings.Contains(out, "50") {
		t.Errorf("series summary missing the energy column or its last value:\n%s", out)
	}
}

// TestRunSeriesWindowCSV round-trips a series file through the series
// subcommand's reader and window.
func TestRunSeriesWindowCSV(t *testing.T) {
	fr := obs.NewFlightRecorder(obs.FlightOptions{Interval: time.Second})
	for i := 0; i <= 10; i++ {
		fr.Record(obs.FlightSample{T: time.Duration(i) * time.Second, SpinUps: i})
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "run.series.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := fr.Series().WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	s, err := obs.ReadSeriesCSV(rf)
	if err != nil {
		t.Fatal(err)
	}
	w := s.Window(3*time.Second, 7*time.Second)
	if w.Len() != 5 {
		t.Fatalf("window has %d samples, want 5", w.Len())
	}
	if col := w.Column("spin_ups"); col[0] != 3 || col[4] != 7 {
		t.Fatalf("windowed spin_ups %v", col)
	}
}
