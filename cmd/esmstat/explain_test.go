package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"esm/internal/obs"
)

// TestUsageListsEverySubcommand pins the top-level usage output: every
// dispatched subcommand appears exactly once with a brief.
func TestUsageListsEverySubcommand(t *testing.T) {
	want := []string{"alerts", "attrib", "diff", "events", "explain", "fleet", "latency", "series"}
	if len(subcommandHelp) != len(want) {
		t.Fatalf("subcommandHelp lists %d subcommands, want %d", len(subcommandHelp), len(want))
	}
	for i, name := range want {
		if subcommandHelp[i].name != name {
			t.Errorf("subcommandHelp[%d] = %q, want %q (keep the table sorted)", i, subcommandHelp[i].name, name)
		}
		if subcommandHelp[i].brief == "" {
			t.Errorf("subcommand %q has no brief", subcommandHelp[i].name)
		}
	}
	var buf bytes.Buffer
	usage(&buf)
	out := buf.String()
	for _, name := range want {
		if !strings.Contains(out, "\n  "+name+" ") {
			t.Errorf("usage output does not list subcommand %q:\n%s", name, out)
		}
	}
}

// explainFixture writes a small provenance ledger to disk: a spin-up
// storm on enclosure 2 driven by injected faults, one move decision,
// and attribution rows, all inside the first ten minutes.
func explainFixture(t *testing.T) string {
	t.Helper()
	p := obs.NewProvenance(obs.ProvenanceOptions{})
	at := func(m int) time.Duration { return time.Duration(m) * time.Minute }
	p.Determination(at(4), 1, obs.CausePeriodEnd, 2, 1)
	p.Decision(at(4), obs.ProvDecision{
		Kind: obs.ProvMove, Det: 1, Cause: obs.CausePeriodEnd, Item: 7, Class: 0,
		PrevClass: -1, Src: 0, Dst: 2, IntervalS: 300, ReadRatio: 0.9, ToCold: true,
	})
	p.Decision(at(4), obs.ProvDecision{
		Kind: obs.ProvReclass, Det: 1, Cause: obs.CausePeriodEnd, Item: 8, Class: 0, PrevClass: 3, Src: 1, Dst: -1,
	})
	for i := 0; i < 3; i++ {
		p.Fault(at(5)+time.Duration(i)*time.Second, 2, "spinup-fail")
		p.PowerTransition(at(5)+time.Duration(i)*time.Second, 2, "spinup", obs.CauseDemand)
	}
	p.PowerTransition(at(6), 2, "on", obs.CauseDemand)
	p.MigrationDone(at(7), 7, 0, 2)
	p.RecordAttribution(at(20), &obs.Attribution{
		TotalJ: 1000,
		Enclosures: []obs.EnclosureAttribution{{
			Enclosure: 2,
			ByItem: []obs.ItemEnergy{
				{Item: 7, Class: 0, Joules: 400},
				{Item: 9, Class: 1, Joules: 100},
			},
		}},
	}, 0)
	path := filepath.Join(t.TempDir(), "run.prov.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Series().WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestExplainReportNamesInjectedCause runs explain over the fixture
// and checks the report surfaces the injected fault burst as the top
// root cause, the faulted enclosure, and the attributed item with its
// decision chain.
func TestExplainReportNamesInjectedCause(t *testing.T) {
	path := explainFixture(t)
	var buf bytes.Buffer
	if err := runExplain(&buf, []string{"-since", "0s", "-until", "10m", path}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "1. fault burst: 3 injected faults (causes: spinup-fail x3) on enclosures 2 x3") {
		t.Errorf("report does not rank the injected fault burst first:\n%s", out)
	}
	if !strings.Contains(out, "spin-up storm: 3 spin-up transitions") {
		t.Errorf("report misses the spin-up storm:\n%s", out)
	}
	if !strings.Contains(out, "item 7") || !strings.Contains(out, "400.0 J") {
		t.Errorf("report misses the attributed item:\n%s", out)
	}
	if !strings.Contains(out, "last 0->2 at 4m0s") {
		t.Errorf("report misses item 7's move chain:\n%s", out)
	}

	// The report is a pure function of the file: rerunning yields the
	// identical bytes.
	var again bytes.Buffer
	if err := runExplain(&again, []string{"-since", "0s", "-until", "10m", path}); err != nil {
		t.Fatal(err)
	}
	if buf.String() != again.String() {
		t.Error("explain report not deterministic across reruns")
	}
}

// TestExplainAlertWindow resolves the window from an alert firing in a
// saved event log.
func TestExplainAlertWindow(t *testing.T) {
	path := explainFixture(t)
	var events bytes.Buffer
	rec := obs.New(obs.Options{Sink: obs.NewJSONLSink(&events), Registry: obs.NewRegistry(), Label: "x"})
	rec.Alert(8*time.Minute, obs.AlertEvent{
		Rule: "budget", State: string(obs.AlertFiring), Prev: "pending",
		Signal: "total_energy_j", Value: 2000, Threshold: 1500,
	})
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	logPath := filepath.Join(t.TempDir(), "events.jsonl")
	if err := os.WriteFile(logPath, events.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := runExplain(&buf, []string{"-alert", "budget", "-events", logPath, path}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "alert budget first fired at 8m0s") {
		t.Errorf("report does not state the alert firing:\n%s", out)
	}
	if !strings.Contains(out, "fault burst") {
		t.Errorf("alert-derived window misses the fault burst:\n%s", out)
	}

	var missing bytes.Buffer
	if err := runExplain(&missing, []string{"-alert", "nope", "-events", logPath, path}); err == nil {
		t.Error("unknown alert rule did not error")
	}
}

// TestSeriesDiffLocatesDivergence pins diff -series: identical series
// report no divergence; a perturbed copy reports the first diverged
// sample and hands explain the window.
func TestSeriesDiffLocatesDivergence(t *testing.T) {
	mk := func(perturb bool) string {
		f := obs.NewFlightRecorder(obs.FlightOptions{Interval: time.Minute})
		for i := 0; i < 10; i++ {
			e := 100.0 * float64(i)
			if perturb && i >= 6 {
				e *= 1.25
			}
			f.Record(obs.FlightSample{T: time.Duration(i) * time.Minute, TotalEnergyJ: e, SpinUps: i})
		}
		path := filepath.Join(t.TempDir(), "s.csv")
		fh, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Series().WriteCSV(fh); err != nil {
			t.Fatal(err)
		}
		if err := fh.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}
	base, same, pert := mk(false), mk(false), mk(true)

	var buf bytes.Buffer
	diverged, err := runSeriesDiff(&buf, base, same, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if diverged {
		t.Fatalf("identical series reported diverged:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "series identical") {
		t.Errorf("missing identical verdict:\n%s", buf.String())
	}

	buf.Reset()
	diverged, err = runSeriesDiff(&buf, base, pert, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if !diverged {
		t.Fatalf("perturbed series not reported:\n%s", buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "earliest divergence: total_energy_j at 6m0s (window 5m0s..6m0s)") {
		t.Errorf("divergence window wrong:\n%s", out)
	}
	if !strings.Contains(out, "esmstat explain -since 5m0s -until 6m0s") {
		t.Errorf("missing explain hand-off:\n%s", out)
	}
	if !strings.Contains(out, "spin_ups") {
		t.Errorf("undiverged signals should still be listed:\n%s", out)
	}
}
