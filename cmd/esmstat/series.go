// The series subcommand: summarize (or re-emit) a flight-recorder
// series CSV written by esmbench -series or esmd -series, optionally
// windowed on simulated time. The -since/-until window flags here are
// the same ones the events renderer uses.

package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"esm/internal/obs"
)

// addWindowFlags registers the shared -since/-until simulated-time
// window flags on fs. A zero or negative -until means "to the end of
// the run", matching obs.Series.Window.
func addWindowFlags(fs *flag.FlagSet) (since, until *time.Duration) {
	since = fs.Duration("since", 0, "drop samples/events before this simulated time (Go duration, e.g. 10m)")
	until = fs.Duration("until", 0, "drop samples/events after this simulated time (0 = end of run)")
	return since, until
}

func runSeries(args []string) error {
	fs := flag.NewFlagSet("esmstat series", flag.ExitOnError)
	since, until := addWindowFlags(fs)
	asCSV := fs.Bool("csv", false, "re-emit the windowed series as CSV instead of the summary")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: esmstat series [-since D] [-until D] [-csv] <run.series.csv>")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	s, err := obs.ReadSeriesCSV(f)
	if err != nil {
		return fmt.Errorf("%s: %w", fs.Arg(0), err)
	}
	s = s.Window(*since, *until)
	if s.Len() == 0 {
		return fmt.Errorf("%s: no samples in window", fs.Arg(0))
	}
	if *asCSV {
		return s.WriteCSV(os.Stdout)
	}
	renderSeries(os.Stdout, s)
	return nil
}

// renderSeries prints one line per column: first and last values plus
// the min/max over the window.
func renderSeries(out io.Writer, s *obs.Series) {
	first := time.Duration(s.TimesNS[0])
	last := time.Duration(s.TimesNS[s.Len()-1])
	fmt.Fprintf(out, "%d samples, %v .. %v (interval %v)\n",
		s.Len(), first, last, time.Duration(s.IntervalNS))
	fmt.Fprintf(out, "  %-22s %14s %14s %14s %14s\n", "column", "first", "last", "min", "max")
	for i, col := range s.Cols {
		vals := s.Values[i]
		mn, mx := vals[0], vals[0]
		for _, v := range vals {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		fmt.Fprintf(out, "  %-22s %14.6g %14.6g %14.6g %14.6g\n",
			col, vals[0], vals[len(vals)-1], mn, mx)
	}
}
