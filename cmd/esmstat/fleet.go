package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"strings"
	"time"

	"esm/internal/fleet"
)

// runFleet implements `esmstat fleet <url-or-file>`: it fetches the
// control plane's /fleet roll-up (or reads a saved one from disk),
// renders the per-array energy/cost/carbon ledger with the fleet
// totals, and verifies that the fleet-wide joules conserve the summed
// per-array meters to 1e-9 relative. It returns violated=true when
// conservation fails — the caller exits 1, making the command a CI
// gate over a live fleet.
func runFleet(out io.Writer, args []string) (violated bool, err error) {
	fs := flag.NewFlagSet("esmstat fleet", flag.ExitOnError)
	tol := fs.Float64("tol", 1e-9, "relative conservation tolerance")
	if err := fs.Parse(args); err != nil {
		return false, err
	}
	if fs.NArg() != 1 {
		return false, fmt.Errorf("usage: esmstat fleet [-tol REL] <http://host:port | rollup.json>")
	}
	target := fs.Arg(0)

	var roll fleet.Rollup
	var statuses []fleet.Status
	if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") {
		base := strings.TrimRight(target, "/")
		if err := fetchJSON(base+"/fleet", &roll); err != nil {
			return false, err
		}
		// The per-array statuses carry the liveness counters and the
		// settled energy of finished arrays.
		for _, line := range roll.Arrays {
			var st fleet.Status
			if err := fetchJSON(base+"/arrays/"+line.Array+"/status", &st); err != nil {
				return false, err
			}
			statuses = append(statuses, st)
		}
	} else {
		data, err := os.ReadFile(target)
		if err != nil {
			return false, err
		}
		if err := json.Unmarshal(data, &roll); err != nil {
			return false, fmt.Errorf("%s: %w", target, err)
		}
	}
	return reportFleet(out, roll, statuses, *tol)
}

// fetchJSON GETs url and decodes the JSON body into v.
func fetchJSON(url string, v any) error {
	client := http.Client{Timeout: 30 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	return json.Unmarshal(body, v)
}

// reportFleet renders the roll-up and checks conservation.
func reportFleet(out io.Writer, roll fleet.Rollup, statuses []fleet.Status, tol float64) (violated bool, err error) {
	if len(roll.Arrays) == 0 {
		return false, fmt.Errorf("fleet roll-up has no arrays")
	}
	m := roll.Cost
	fmt.Fprintf(out, "fleet of %d arrays  (PUE %.2f, $%.3f/kWh, %.3f kgCO2/kWh, replication x%g, embodied %g kgCO2/TB over %gy)\n",
		len(roll.Arrays), m.PUE, m.ElectricityUSDPerKWh, m.GridKgCO2PerKWh, m.ReplicationFactor, m.EmbodiedKgCO2PerTB, m.LifespanYears)
	fmt.Fprintf(out, "%-16s %10s %12s %12s %10s %10s %10s %10s %8s\n",
		"array", "span", "metered J", "facility J", "kWh", "cost $", "op kgCO2", "emb kgCO2", "records")
	for _, line := range roll.Arrays {
		fmt.Fprintf(out, "%-16s %10s %12.1f %12.1f %10.4f %10.4f %10.5f %10.5f %8d\n",
			line.Array, time.Duration(line.SpanNS).Round(time.Second),
			line.MeteredJ, line.FacilityJ, line.FacilityKWh,
			line.CostUSD, line.OperationalKgCO2, line.EmbodiedKgCO2, line.Records)
	}
	f := roll.Fleet
	fmt.Fprintf(out, "%-16s %10s %12.1f %12.1f %10.4f %10.4f %10.5f %10.5f %8d\n",
		"FLEET", time.Duration(f.SpanNS).Round(time.Second),
		f.MeteredJ, f.FacilityJ, f.FacilityKWh,
		f.CostUSD, f.OperationalKgCO2, f.EmbodiedKgCO2, f.Records)
	fmt.Fprintf(out, "fleet total: %.4f kWh  $%.4f  %.5f kgCO2 (%.5f operational + %.5f embodied)\n",
		f.FacilityKWh, f.CostUSD, f.TotalKgCO2, f.OperationalKgCO2, f.EmbodiedKgCO2)

	// Conservation gate 1: the fleet line is the sum of its parts.
	sum := 0.0
	for _, line := range roll.Arrays {
		sum += line.MeteredJ
	}
	if !withinRel(f.MeteredJ, sum, tol) {
		fmt.Fprintf(out, "CONSERVATION VIOLATION: fleet %.9g J vs per-array sum %.9g J (rel %.3g > %.3g)\n",
			f.MeteredJ, sum, relDiff(f.MeteredJ, sum), tol)
		violated = true
	}

	// Conservation gate 2: once every array is finalized, the settled
	// /status energies must agree with the roll-up meters too.
	if len(statuses) == len(roll.Arrays) {
		allFinished := true
		statusSum := 0.0
		for _, st := range statuses {
			allFinished = allFinished && st.Finished
			statusSum += st.EnergyJ
		}
		if allFinished && !withinRel(f.MeteredJ, statusSum, tol) {
			fmt.Fprintf(out, "CONSERVATION VIOLATION: fleet %.9g J vs summed /status energy %.9g J (rel %.3g > %.3g)\n",
				f.MeteredJ, statusSum, relDiff(f.MeteredJ, statusSum), tol)
			violated = true
		}
	}
	if !violated {
		fmt.Fprintf(out, "conservation OK: fleet joules match per-array meters within %.0e relative\n", tol)
	}
	return violated, nil
}

func relDiff(a, b float64) float64 {
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale == 0 {
		return 0
	}
	return math.Abs(a-b) / scale
}

func withinRel(a, b, tol float64) bool {
	return relDiff(a, b) <= tol
}
