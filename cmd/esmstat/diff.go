// The diff subcommand: compare two run manifests (BENCH_*.json written
// by esmbench -series) signal by signal with relative thresholds. This
// is the regression gate — CI diffs a fresh run against a committed
// baseline and fails the build when a gated signal crosses its
// threshold.

package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"esm/internal/experiments"
)

// runDiff compares baseline and new manifests; the returned bool is
// true when any gated signal regressed (the caller exits non-zero).
func runDiff(args []string) (bool, error) {
	fs := flag.NewFlagSet("esmstat diff", flag.ExitOnError)
	def := experiments.DefaultDiffThresholds()
	energy := fs.Float64("energy", def.Energy, "relative threshold on energy_j and avg_enclosure_w")
	resp := fs.Float64("resp", def.Resp, "relative threshold on resp_mean_us and resp_p95_us")
	spinups := fs.Float64("spinups", def.SpinUps, "relative threshold on spin_ups")
	migrations := fs.Float64("migrations", def.Migrations, "relative threshold on migrations and migrated_bytes")
	alerts := fs.Float64("alerts", def.Alerts, "allowed absolute increase in alerts_firing and alerts_fired (0 = any new firing alert regresses)")
	if err := fs.Parse(args); err != nil {
		return false, err
	}
	if fs.NArg() != 2 {
		return false, fmt.Errorf("usage: esmstat diff [-energy F] [-resp F] [-spinups F] [-migrations F] [-alerts N] <baseline.json> <new.json>")
	}
	a, err := experiments.ReadManifest(fs.Arg(0))
	if err != nil {
		return false, err
	}
	b, err := experiments.ReadManifest(fs.Arg(1))
	if err != nil {
		return false, err
	}
	d := experiments.DiffManifests(a, b, experiments.DiffThresholds{
		Energy: *energy, Resp: *resp, SpinUps: *spinups, Migrations: *migrations, Alerts: *alerts,
	})
	renderDiff(os.Stdout, a, b, d)
	return d.Regressed(), nil
}

// renderDiff prints the signal table, advisory warnings, and the
// verdict line.
func renderDiff(out io.Writer, a, b experiments.Manifest, d *experiments.Diff) {
	fmt.Fprintf(out, "diff %s/%s: %s -> %s\n", a.Workload, a.Policy, orDash(a.Date), orDash(b.Date))
	for _, w := range d.Warnings {
		fmt.Fprintf(out, "warning: %s\n", w)
	}
	fmt.Fprintf(out, "  %-16s %14s %14s %9s %6s\n", "signal", "old", "new", "delta", "gate")
	regressions := 0
	for _, r := range d.Rows {
		delta := "-"
		if r.Old > 0 {
			delta = fmt.Sprintf("%+.1f%%", r.DeltaPct)
		}
		mark := ""
		if r.Regressed {
			mark = "  REGRESSION"
			regressions++
		}
		// Alert rows gate on absolute count deltas, not percentages.
		gate := fmt.Sprintf("%5.0f%%", r.Threshold*100)
		if strings.HasPrefix(r.Signal, "alerts_") {
			gate = fmt.Sprintf("   +%g", r.Threshold)
		}
		fmt.Fprintf(out, "  %-16s %14.6g %14.6g %9s %s%s\n",
			r.Signal, r.Old, r.New, delta, gate, mark)
	}
	if regressions > 0 {
		fmt.Fprintf(out, "REGRESSION: %d signal(s) over threshold\n", regressions)
	} else {
		fmt.Fprintln(out, "no regression")
	}
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
