// The diff subcommand: compare two run manifests (BENCH_*.json written
// by esmbench -series) signal by signal with relative thresholds. This
// is the regression gate — CI diffs a fresh run against a committed
// baseline and fails the build when a gated signal crosses its
// threshold.
//
// With -series the two arguments are flight-series CSVs instead: the
// runs are time-aligned on their shared sample grid and the first
// divergence window of every signal is located — the window `esmstat
// explain` wants handed to it.

package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"
	"time"

	"esm/internal/experiments"
	"esm/internal/obs"
)

// runDiff compares baseline and new manifests; the returned bool is
// true when any gated signal regressed (the caller exits non-zero).
func runDiff(args []string) (bool, error) {
	fs := flag.NewFlagSet("esmstat diff", flag.ExitOnError)
	def := experiments.DefaultDiffThresholds()
	energy := fs.Float64("energy", def.Energy, "relative threshold on energy_j and avg_enclosure_w")
	resp := fs.Float64("resp", def.Resp, "relative threshold on resp_mean_us and resp_p95_us")
	spinups := fs.Float64("spinups", def.SpinUps, "relative threshold on spin_ups")
	migrations := fs.Float64("migrations", def.Migrations, "relative threshold on migrations and migrated_bytes")
	alerts := fs.Float64("alerts", def.Alerts, "allowed absolute increase in alerts_firing and alerts_fired (0 = any new firing alert regresses)")
	series := fs.Bool("series", false, "diff two flight-series CSVs instead of manifests: locate each signal's first divergence window")
	tol := fs.Float64("tol", 1e-9, "with -series: relative tolerance before two samples count as diverged")
	if err := fs.Parse(args); err != nil {
		return false, err
	}
	if fs.NArg() != 2 {
		return false, fmt.Errorf("usage: esmstat diff [-energy F] [-resp F] [-spinups F] [-migrations F] [-alerts N] <baseline.json> <new.json>\n       esmstat diff -series [-tol F] <baseline.series.csv> <new.series.csv>")
	}
	if *series {
		return runSeriesDiff(os.Stdout, fs.Arg(0), fs.Arg(1), *tol)
	}
	a, err := experiments.ReadManifest(fs.Arg(0))
	if err != nil {
		return false, err
	}
	b, err := experiments.ReadManifest(fs.Arg(1))
	if err != nil {
		return false, err
	}
	d := experiments.DiffManifests(a, b, experiments.DiffThresholds{
		Energy: *energy, Resp: *resp, SpinUps: *spinups, Migrations: *migrations, Alerts: *alerts,
	})
	renderDiff(os.Stdout, a, b, d)
	return d.Regressed(), nil
}

// renderDiff prints the signal table, advisory warnings, and the
// verdict line.
func renderDiff(out io.Writer, a, b experiments.Manifest, d *experiments.Diff) {
	fmt.Fprintf(out, "diff %s/%s: %s -> %s\n", a.Workload, a.Policy, orDash(a.Date), orDash(b.Date))
	for _, w := range d.Warnings {
		fmt.Fprintf(out, "warning: %s\n", w)
	}
	fmt.Fprintf(out, "  %-16s %14s %14s %9s %6s\n", "signal", "old", "new", "delta", "gate")
	regressions := 0
	for _, r := range d.Rows {
		delta := "-"
		if r.Old > 0 {
			delta = fmt.Sprintf("%+.1f%%", r.DeltaPct)
		}
		mark := ""
		if r.Regressed {
			mark = "  REGRESSION"
			regressions++
		}
		// Alert rows gate on absolute count deltas, not percentages.
		gate := fmt.Sprintf("%5.0f%%", r.Threshold*100)
		if strings.HasPrefix(r.Signal, "alerts_") {
			gate = fmt.Sprintf("   +%g", r.Threshold)
		}
		fmt.Fprintf(out, "  %-16s %14.6g %14.6g %9s %s%s\n",
			r.Signal, r.Old, r.New, delta, gate, mark)
	}
	if regressions > 0 {
		fmt.Fprintf(out, "REGRESSION: %d signal(s) over threshold\n", regressions)
	} else {
		fmt.Fprintln(out, "no regression")
	}
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// seriesDivergence is one signal's first point of disagreement on the
// aligned grid.
type seriesDivergence struct {
	signal   string
	at       time.Duration // timestamp of the first diverged sample
	winStart time.Duration // previous aligned timestamp (window start)
	old, new float64
}

// runSeriesDiff time-aligns two flight-series CSVs on their shared
// timestamps and reports the first divergence window per signal; the
// returned bool is true when any signal diverged (the caller exits 1).
func runSeriesDiff(out io.Writer, aPath, bPath string, tol float64) (bool, error) {
	a, err := readSeriesFile(aPath)
	if err != nil {
		return false, err
	}
	b, err := readSeriesFile(bPath)
	if err != nil {
		return false, err
	}
	// Intersect the (sorted) sample grids.
	var ai, bi []int
	for i, j := 0, 0; i < len(a.TimesNS) && j < len(b.TimesNS); {
		switch {
		case a.TimesNS[i] == b.TimesNS[j]:
			ai, bi = append(ai, i), append(bi, j)
			i++
			j++
		case a.TimesNS[i] < b.TimesNS[j]:
			i++
		default:
			j++
		}
	}
	if len(ai) == 0 {
		return false, fmt.Errorf("series share no sample timestamps (%d vs %d samples); did the runs use different -series intervals?", a.Len(), b.Len())
	}
	var shared, missing []string
	for _, col := range a.Cols {
		if b.Column(col) != nil {
			shared = append(shared, col)
		} else {
			missing = append(missing, col)
		}
	}
	fmt.Fprintf(out, "series diff %s (%d samples) vs %s (%d samples): %d aligned, %d shared signals\n",
		aPath, a.Len(), bPath, b.Len(), len(ai), len(shared))
	for _, col := range missing {
		fmt.Fprintf(out, "warning: signal %s missing from %s\n", col, bPath)
	}

	var divs []seriesDivergence
	for _, col := range shared {
		av, bv := a.Column(col), b.Column(col)
		for k := range ai {
			x, y := av[ai[k]], bv[bi[k]]
			if !diverged(x, y, tol) {
				continue
			}
			d := seriesDivergence{signal: col, at: time.Duration(a.TimesNS[ai[k]]), old: x, new: y}
			if k > 0 {
				d.winStart = time.Duration(a.TimesNS[ai[k-1]])
			}
			divs = append(divs, d)
			break
		}
	}
	fmt.Fprintf(out, "  %-22s %16s %14s %14s\n", "signal", "first divergence", "old", "new")
	for _, col := range shared {
		found := false
		for _, d := range divs {
			if d.signal == col {
				fmt.Fprintf(out, "  %-22s %16v %14.6g %14.6g\n", col, d.at.Round(time.Second), d.old, d.new)
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(out, "  %-22s %16s\n", col, "-")
		}
	}
	if len(divs) == 0 {
		fmt.Fprintln(out, "series identical on the aligned grid")
		return false, nil
	}
	first := divs[0]
	for _, d := range divs[1:] {
		if d.at < first.at {
			first = d
		}
	}
	fmt.Fprintf(out, "earliest divergence: %s at %v (window %v..%v)\n",
		first.signal, first.at.Round(time.Second), first.winStart.Round(time.Second), first.at.Round(time.Second))
	fmt.Fprintf(out, "next: esmstat explain -since %v -until %v <run.prov.csv>\n",
		first.winStart.Round(time.Second), first.at.Round(time.Second))
	fmt.Fprintf(out, "DIVERGED: %d signal(s)\n", len(divs))
	return true, nil
}

// diverged applies the relative tolerance, with an absolute floor so
// zero-vs-rounding-noise never counts.
func diverged(x, y, tol float64) bool {
	d := math.Abs(x - y)
	if d <= 1e-12 {
		return false
	}
	return d > tol*math.Max(math.Abs(x), math.Abs(y))
}

// readSeriesFile loads one flight-series CSV.
func readSeriesFile(path string) (*obs.Series, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := obs.ReadSeriesCSV(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}
