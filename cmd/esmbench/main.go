// Command esmbench regenerates the paper's evaluation: Fig. 6 (logical
// I/O pattern mixes) and Figs 8–19 (power, response time / derived
// application performance, migrated data and interval analysis for the
// File Server, TPC-C and TPC-H workloads under the proposed method, PDC
// and DDR).
//
// Usage:
//
//	esmbench [-scale f] [-workload fileserver|oltp|dss|cloudblock|all] [-fig N]
//	         [-parallel N] [-shards N] [-json out.json] [-series dir] [-list]
//
// -scale 1.0 reproduces the paper's full durations (hours of simulated
// time; minutes of CPU). The default scale keeps runs under a minute.
// Independent replays run concurrently, -parallel at a time (default
// GOMAXPROCS); -shards additionally parallelizes inside each replay via
// the sharded deterministic engine (see DESIGN.md §14). Results are
// byte-identical at any setting of either flag; the effective worker
// count and GOMAXPROCS are printed and recorded in the -json report so
// over-asked bounds are visible. -json additionally
// writes every figure's per-policy numbers to a machine-readable file
// (see `make bench-json`). -series attaches a flight recorder to every
// replay and writes, per run, a whole-system time series CSV plus a
// BENCH_<workload>-<policy>.json run manifest into the directory;
// `esmstat diff` compares two manifests with relative regression
// thresholds (the CI gate, see `make bench-smoke`).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"esm/internal/core"
	"esm/internal/experiments"
	"esm/internal/faults"
	"esm/internal/obs"
	"esm/internal/powermodel"
	"esm/internal/storage"
	"esm/internal/workload"
)

func main() {
	scale := flag.Float64("scale", 0, "time-scale factor (1.0 = paper-scale durations; 0 = per-workload default)")
	kind := flag.String("workload", "all", "fileserver, oltp, dss, cloudblock or all (all = the paper's three)")
	fig := flag.Int("fig", 0, "regenerate a single figure (6, 8..19, 20 = cloudblock); 0 = all")
	list := flag.Bool("list", false, "print Table I / Table II parameters and exit")
	sweep := flag.Bool("sweep", false, "run the sensitivity sweeps instead of the figures")
	extended := flag.Bool("extended", false, "also evaluate the extended baselines (timeout, MAID, write off-loading)")
	events := flag.String("events", "", "append every replay's telemetry event stream to this JSONL file")
	tracePath := flag.String("trace", "", "write a Perfetto trace-event file per replay (policy and workload are inserted into the name)")
	seriesDir := flag.String("series", "", "write a flight-recorder series CSV and a BENCH_<workload>-<policy>.json run manifest per replay into this directory")
	parallel := flag.Int("parallel", 0, "max concurrent replays (0 = GOMAXPROCS)")
	shards := flag.Int("shards", 0, "per-replay shard count for the sharded engine (0 or 1 = serial; results are byte-identical)")
	jsonPath := flag.String("json", "", "also write per-figure results as JSON to this file")
	faultSpec := flag.String("faults", "", "fault-injection scenario, e.g. seed=42,spinup=0.1,io=0.001,battery=10m:25m (see README)")
	alertSpec := flag.String("alerts", "", "comma-separated watchdog rules evaluated per replay on the flight sampling grid, e.g. budget:total_energy_j>1.5e6:for=30s (see DESIGN.md §16)")
	provenance := flag.Bool("provenance", false, "record the decision-provenance ledger per replay and write it as <workload>-<policy>.prov.csv into the -series directory (requires -series; attaches a sink-less tracer so the energy ledger's top items are joined in)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(obs.VersionString("esmbench"))
		return
	}

	if *provenance && *seriesDir == "" {
		fmt.Fprintln(os.Stderr, "esmbench: -provenance requires -series DIR (the ledger CSV is written next to the series)")
		os.Exit(2)
	}

	var alertRules []obs.Rule
	if *alertSpec != "" {
		rules, err := obs.ParseRuleList(*alertSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "esmbench: -alerts:", err)
			os.Exit(1)
		}
		alertRules = rules
	}

	var fc *faults.Config
	if *faultSpec != "" {
		c, err := faults.ParseSpec(*faultSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "esmbench: -faults:", err)
			os.Exit(1)
		}
		fc = c
	}

	experiments.SetParallelism(*parallel)
	experiments.SetShards(*shards)
	if *list {
		printParameters()
		return
	}
	if *sweep {
		if err := runSweeps(*scale, *kind); err != nil {
			fmt.Fprintln(os.Stderr, "esmbench:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*scale, *kind, *fig, *extended, *events, *tracePath, *seriesDir, *jsonPath, fc, alertRules, *provenance); err != nil {
		fmt.Fprintln(os.Stderr, "esmbench:", err)
		os.Exit(1)
	}
}

// traceFileFor derives the per-run trace path from the -trace flag:
// "out.json" becomes "out-fileserver-esm.json".
func traceFileFor(path, workload, policy string) string {
	ext := filepath.Ext(path)
	return path[:len(path)-len(ext)] + "-" + workload + "-" + policy + ext
}

// writeSeriesAndManifests writes, for every replay of ev, the flight
// series as <dir>/<workload>-<policy>.series.csv and the run manifest
// as <dir>/BENCH_<workload>-<policy>.json — the pair `esmstat diff`
// compares across runs.
func writeSeriesAndManifests(dir string, scale float64, fc *faults.Config, ev *experiments.Eval) error {
	for i, f := range ev.Policies {
		res := ev.Results[i]
		base := ev.Workload.Name + "-" + f.Name
		seriesFile := base + ".series.csv"
		if s := res.Series; s != nil {
			sf, err := os.Create(filepath.Join(dir, seriesFile))
			if err != nil {
				return err
			}
			if err := s.WriteCSV(sf); err != nil {
				sf.Close()
				return err
			}
			if err := sf.Close(); err != nil {
				return err
			}
		} else {
			seriesFile = ""
		}
		provFile := base + ".prov.csv"
		if s := res.ProvSeries; s != nil {
			pf, err := os.Create(filepath.Join(dir, provFile))
			if err != nil {
				return err
			}
			if err := s.WriteCSV(pf); err != nil {
				pf.Close()
				return err
			}
			if err := pf.Close(); err != nil {
				return err
			}
		} else {
			provFile = ""
		}
		m := experiments.NewManifest(ev.Workload, f.Name, scale, fc, res)
		m.Date = time.Now().Format("2006-01-02")
		m.SeriesFile = seriesFile
		m.ProvFile = provFile
		if err := m.WriteFile(filepath.Join(dir, "BENCH_"+base+".json")); err != nil {
			return err
		}
	}
	fmt.Printf("   (wrote %d run manifests + series under %s)\n", len(ev.Policies), dir)
	return nil
}

// figsOf maps each application to its figure numbers: the paper's
// figures for its three workloads, plus figure 20 for the cloud-block
// workload this repository adds beyond the paper.
var figsOf = map[experiments.Kind][]int{
	experiments.FileServer: {8, 9, 10, 17},
	experiments.OLTP:       {11, 12, 13, 18},
	experiments.DSS:        {14, 15, 16, 19},
	experiments.CloudBlock: {20},
}

func runSweeps(scale float64, kindFlag string) error {
	kinds := experiments.Kinds()
	if kindFlag != "all" {
		kinds = []experiments.Kind{experiments.Kind(kindFlag)}
	}
	for _, k := range kinds {
		ks := scale
		if ks == 0 {
			ks = experiments.DefaultScale(k)
		}
		w, err := experiments.Build(k, ks)
		if err != nil {
			return err
		}
		// Sweep points share the workload; materialize once so every
		// concurrent replay reads the same slice instead of regenerating.
		fmt.Printf("\n-- %s sweeps: %d records, %v --\n", w.Name, len(w.EnsureRecords()), w.Duration)
		tables, err := experiments.DefaultSweeps(w)
		if err != nil {
			return err
		}
		for _, t := range tables {
			t.Fprint(os.Stdout)
		}
	}
	return nil
}

func run(scale float64, kindFlag string, fig int, extended bool, eventsPath, tracePath, seriesDir, jsonPath string, fc *faults.Config, alertRules []obs.Rule, provenance bool) error {
	if seriesDir != "" {
		if err := os.MkdirAll(seriesDir, 0o755); err != nil {
			return err
		}
	}
	kinds := experiments.Kinds()
	if kindFlag != "all" {
		kinds = []experiments.Kind{experiments.Kind(kindFlag)}
	}

	var report *experiments.Report
	if jsonPath != "" {
		report = &experiments.Report{
			Date:       time.Now().Format("2006-01-02"),
			Parallel:   experiments.Parallelism(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Shards:     experiments.Shards(),
		}
	}

	// With -events, every replay shares one JSONL sink; the per-policy
	// recorders stamp "workload/policy" run labels so the interleaved
	// streams can be told apart (and filtered by esmstat -run).
	var sink *obs.JSONLSink
	if eventsPath != "" {
		f, err := os.Create(eventsPath)
		if err != nil {
			return err
		}
		sink = obs.NewJSONLSink(f)
		defer sink.Close()
	}

	// Fig. 6 uses only the classifier, not the storage simulator.
	if fig == 0 || fig == 6 {
		mixes := map[experiments.Kind]core.PatternMix{}
		for _, k := range kinds {
			ks := scale
			if ks == 0 {
				ks = 1.0 // classification alone is cheap at paper scale
				if k == experiments.CloudBlock {
					// ... except at 100M records; the mix is stable from a
					// fraction of the trace.
					ks = experiments.DefaultScale(k)
				}
			}
			w, err := experiments.Build(k, ks)
			if err != nil {
				return err
			}
			mixes[k] = experiments.PatternMix(w, core.DefaultParams().BreakEven)
		}
		experiments.Fig6Table(mixes).Fprint(os.Stdout)
		if fig == 6 {
			return nil
		}
	}

	for _, k := range kinds {
		want := false
		for _, f := range figsOf[k] {
			if fig == 0 || fig == f {
				want = true
			}
		}
		if !want {
			continue
		}
		ks := scale
		if ks == 0 {
			ks = experiments.DefaultScale(k)
		}
		w, err := experiments.Build(k, ks)
		if err != nil {
			return err
		}
		// The same trace replays once per policy; materialize it so the
		// concurrent runs share one slice (a single streaming run would
		// not need this). The cloud-block trace is the exception: at
		// production scale it runs to 100M records and must never
		// materialize — each replay streams its own generator.
		if k == experiments.CloudBlock {
			fmt.Printf("\n-- %s: streaming, %d items, %d enclosures, %v --\n",
				w.Name, w.Catalog.Len(), w.Enclosures, w.Duration)
		} else {
			fmt.Printf("\n-- %s: %d records, %d items, %d enclosures, %v --\n",
				w.Name, len(w.EnsureRecords()), w.Catalog.Len(), w.Enclosures, w.Duration)
		}
		start := time.Now()
		pols := experiments.PoliciesFor(ks)
		if extended {
			pols = experiments.ExtendedPolicies(ks)
		}
		var recFor func(policy string) *obs.Recorder
		if sink != nil {
			name := w.Name
			recFor = func(policy string) *obs.Recorder {
				return obs.New(obs.Options{Sink: sink, Label: name + "/" + policy})
			}
		}
		// With -trace, each replay writes its own Perfetto file: spans of
		// concurrent runs cannot share one trace without colliding tracks.
		var trcFor func(policy string) *obs.Tracer
		var tracers []*obs.Tracer
		var traceFiles []string
		if tracePath != "" {
			name := w.Name
			trcFor = func(policy string) *obs.Tracer {
				file := traceFileFor(tracePath, name, policy)
				f, err := os.Create(file)
				if err != nil {
					fmt.Fprintln(os.Stderr, "esmbench: -trace:", err)
					return nil
				}
				t := obs.NewTracer(obs.TracerOptions{
					Sink:       obs.NewPerfettoSink(f, name+"/"+policy),
					Enclosures: w.Enclosures,
				})
				tracers = append(tracers, t)
				traceFiles = append(traceFiles, file)
				return t
			}
		}
		// With -series, every replay gets its own flight recorder; the
		// series CSV and run manifest are written from the results below.
		var flightFor func(policy string) *obs.FlightRecorder
		if seriesDir != "" {
			flightFor = func(string) *obs.FlightRecorder {
				return obs.NewFlightRecorder(obs.FlightOptions{})
			}
		}
		// With -alerts, each replay gets its own watchdog over the shared
		// rule set; alert transitions land in the -events stream via the
		// run's recorder, and the summary in the run manifest.
		var alertsFor func(policy string, rec *obs.Recorder) *obs.Watchdog
		if len(alertRules) > 0 {
			name := w.Name
			alertsFor = func(policy string, rec *obs.Recorder) *obs.Watchdog {
				return obs.NewWatchdog(obs.WatchdogOptions{
					Rules:    alertRules,
					Recorder: rec,
					Instance: name + "/" + policy,
				})
			}
		}
		// With -provenance, each replay records the decision ledger. The
		// energy-attribution join needs a tracer; when -trace did not
		// already supply one, a sink-less tracer keeps the ledger
		// without writing Perfetto files.
		var provFor func(policy string) *obs.Provenance
		if provenance {
			provFor = func(string) *obs.Provenance {
				return obs.NewProvenance(obs.ProvenanceOptions{})
			}
			if trcFor == nil {
				encs := w.Enclosures
				trcFor = func(string) *obs.Tracer {
					return obs.NewTracer(obs.TracerOptions{Enclosures: encs})
				}
			}
		}
		ev, err := experiments.EvaluateOpts(w, pols, experiments.Observers{
			Recorder: recFor, Tracer: trcFor, Flight: flightFor, Alerts: alertsFor,
			Provenance: provFor, Faults: fc,
		})
		for _, t := range tracers {
			if cerr := t.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		fmt.Printf("   (replayed %d policies in %v)\n", len(pols), elapsed.Round(time.Millisecond))
		if len(alertRules) > 0 {
			printAlerts(ev)
		}
		if seriesDir != "" {
			if err := writeSeriesAndManifests(seriesDir, ks, fc, ev); err != nil {
				return err
			}
		}
		if len(traceFiles) > 0 {
			fmt.Printf("   (wrote %d Perfetto traces: %s ...)\n", len(traceFiles), traceFiles[0])
			experiments.LatencyTable("Traced latency breakdown — "+w.Name, ev).Fprint(os.Stdout)
			experiments.AttributionTable("Traced energy attribution — "+w.Name, ev).Fprint(os.Stdout)
		}
		if fc != nil {
			experiments.FaultTable(fmt.Sprintf("Fault injection (%s) — %s", fc, w.Name), ev).Fprint(os.Stdout)
		}
		if report != nil {
			report.AddEval(ev, ks, elapsed.Seconds())
		}

		switch k {
		case experiments.FileServer:
			maybe(fig, 8, func() {
				experiments.PowerTable("Fig. 8 — File Server power consumption", ev).Fprint(os.Stdout)
				experiments.PowerSeriesChart("File Server power over time", ev).Fprint(os.Stdout)
				experiments.StateMixTable("File Server enclosure state residency", ev).Fprint(os.Stdout)
			})
			maybe(fig, 9, func() {
				experiments.ResponseTable("Fig. 9 — File Server avg I/O response time", ev).Fprint(os.Stdout)
			})
			maybe(fig, 10, func() { experiments.MigrationTable("Fig. 10 — File Server migrated data size", ev).Fprint(os.Stdout) })
			maybe(fig, 17, func() {
				experiments.IntervalTable("Fig. 17 — File Server I/O intervals", ev, experiments.DefaultIntervalThresholds()).Fprint(os.Stdout)
			})
		case experiments.OLTP:
			maybe(fig, 11, func() {
				experiments.PowerTable("Fig. 11 — TPC-C power consumption", ev).Fprint(os.Stdout)
				experiments.PowerSeriesChart("TPC-C power over time", ev).Fprint(os.Stdout)
				experiments.StateMixTable("TPC-C enclosure state residency", ev).Fprint(os.Stdout)
			})
			maybe(fig, 12, func() { experiments.ThroughputTable(ev).Fprint(os.Stdout) })
			maybe(fig, 13, func() { experiments.MigrationTable("Fig. 13 — TPC-C migrated data size", ev).Fprint(os.Stdout) })
			maybe(fig, 18, func() {
				experiments.IntervalTable("Fig. 18 — TPC-C I/O intervals", ev, experiments.DefaultIntervalThresholds()).Fprint(os.Stdout)
			})
		case experiments.DSS:
			maybe(fig, 14, func() {
				experiments.PowerTable("Fig. 14 — TPC-H power consumption", ev).Fprint(os.Stdout)
				experiments.PowerSeriesChart("TPC-H power over time", ev).Fprint(os.Stdout)
				experiments.StateMixTable("TPC-H enclosure state residency", ev).Fprint(os.Stdout)
			})
			maybe(fig, 15, func() { experiments.QueryResponseTable(ev, []string{"Q2", "Q7", "Q21"}).Fprint(os.Stdout) })
			maybe(fig, 16, func() { experiments.MigrationTable("Fig. 16 — TPC-H migrated data size", ev).Fprint(os.Stdout) })
			maybe(fig, 19, func() {
				experiments.IntervalTable("Fig. 19 — TPC-H I/O intervals", ev, experiments.DefaultIntervalThresholds()).Fprint(os.Stdout)
			})
		case experiments.CloudBlock:
			maybe(fig, 20, func() {
				experiments.PowerTable("Fig. 20 — Cloud block storage power consumption", ev).Fprint(os.Stdout)
				experiments.PowerSeriesChart("Cloud block storage power over time", ev).Fprint(os.Stdout)
				experiments.StateMixTable("Cloud block storage enclosure state residency", ev).Fprint(os.Stdout)
				experiments.ResponseTable("Cloud block storage avg I/O response time", ev).Fprint(os.Stdout)
				experiments.MigrationTable("Cloud block storage migrated data size", ev).Fprint(os.Stdout)
			})
		}
	}
	fmt.Printf("\nreplay concurrency: %d effective workers (bound %d, GOMAXPROCS %d), %d shards per replay\n",
		experiments.EffectiveParallelism(), experiments.Parallelism(),
		runtime.GOMAXPROCS(0), experiments.Shards())
	if report != nil {
		report.ParallelEffective = experiments.EffectiveParallelism()
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		if err := report.Write(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("\nwrote %d figure results to %s\n", len(report.Figures), jsonPath)
	}
	return nil
}

// printAlerts summarizes every replay's end-of-run watchdog state.
func printAlerts(ev *experiments.Eval) {
	fmt.Println("   alerts:")
	for i, f := range ev.Policies {
		res := ev.Results[i]
		fmt.Printf("     %-8s firing %d, fired %d, transitions %d\n",
			f.Name, res.Alerts.Firing, res.Alerts.Fired, res.Alerts.Transitions)
		for _, st := range res.AlertStates {
			fmt.Printf("       %-40s %-8s value %g, threshold %g, fired %d\n",
				st.Spec, st.State, st.Value, st.Threshold, st.Fired)
		}
	}
}

func maybe(fig, want int, f func()) {
	if fig == 0 || fig == want {
		f()
	}
}

func printParameters() {
	p := core.DefaultParams()
	pw := powermodel.DefaultParams()
	sc := storage.DefaultConfig(10)
	fmt.Println("== Table II — parameter values ==")
	fmt.Printf("  break-even time              %v (derived: %v)\n", p.BreakEven, pw.BreakEven().Round(time.Millisecond))
	fmt.Printf("  spin-down time-out           %v\n", sc.SpinDownTimeout)
	fmt.Printf("  max IOPS of disk enclosure   %.0f random / %.0f sequential\n", sc.RandomIOPS, sc.SeqIOPS)
	fmt.Printf("  size of volumes              %.2f TB\n", float64(sc.EnclosureCapacity)/1e12)
	fmt.Printf("  storage cache size           %d MB\n", sc.CacheBytes>>20)
	fmt.Printf("  cache for write delay        %d MB (dirty block rate %.0f%%)\n", sc.WriteDelayCacheBytes>>20, sc.DirtyBlockRate*100)
	fmt.Printf("  cache for preload            %d MB\n", sc.PreloadCacheBytes>>20)
	fmt.Printf("  monitoring coefficient alpha %.1f\n", p.Alpha)
	fmt.Printf("  initial monitoring period    %v\n", p.InitialPeriod)
	fmt.Println("== Table I — application configurations ==")
	fs := workload.DefaultFileServerConfig()
	ol := workload.DefaultOLTPConfig()
	ds := workload.DefaultDSSConfig()
	fmt.Printf("  fileserver: %d volumes on %d enclosures, %v\n", fs.Volumes, fs.Enclosures, fs.Duration)
	fmt.Printf("  oltp:       %d warehouses, DB on %d enclosures + log, %v\n", ol.Warehouses, ol.DBEnclosures, ol.Duration)
	fmt.Printf("  dss:        SF=%.0f, Q1..Q22, DB on %d enclosures + log/work, %v\n", ds.ScaleFactor, ds.DBEnclosures, ds.Duration)
	cb := workload.DefaultCloudBlockConfig()
	fmt.Printf("  cloudblock: %d volumes / %d tenants on %d enclosures, %v (beyond the paper)\n", cb.Volumes, cb.Tenants, cb.Enclosures, cb.Duration)
}
