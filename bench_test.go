// Package esm's root benchmark suite regenerates every table and figure
// of the paper's evaluation (see DESIGN.md §4 for the experiment index):
//
//	BenchmarkFig06PatternMix          — Fig. 6   logical I/O pattern mixes
//	BenchmarkFig08FileServerPower     — Fig. 8   File Server power
//	BenchmarkFig09FileServerResponse  — Fig. 9   File Server response time
//	BenchmarkFig10FileServerMigration — Fig. 10  File Server migrated data
//	BenchmarkFig11TPCCPower           — Fig. 11  TPC-C power
//	BenchmarkFig12TPCCThroughput      — Fig. 12  TPC-C derived tpmC
//	BenchmarkFig13TPCCMigration       — Fig. 13  TPC-C migrated data
//	BenchmarkFig14TPCHPower           — Fig. 14  TPC-H power
//	BenchmarkFig15TPCHQueryResponse   — Fig. 15  TPC-H Q2/Q7/Q21 response
//	BenchmarkFig16TPCHMigration       — Fig. 16  TPC-H migrated data
//	BenchmarkFig17FileServerIntervals — Fig. 17  FS interval analysis
//	BenchmarkFig18TPCCIntervals       — Fig. 18  TPC-C interval analysis
//	BenchmarkFig19TPCHIntervals       — Fig. 19  TPC-H interval analysis
//	BenchmarkTableIIParameters        — Table II parameter audit
//
// The replay of one workload under the four policies is the expensive
// unit of work; the power benchmark of each workload performs it per
// iteration, and the sibling figure benchmarks reuse the cached results
// (their reported metrics are identical either way since replays are
// deterministic). Figures are reported as benchmark metrics; run
// cmd/esmbench for the formatted tables, and -scale 1.0 there for the
// paper-scale durations.
package esm

import (
	"io"
	"sync"
	"testing"
	"time"

	"esm/internal/core"
	"esm/internal/experiments"
	"esm/internal/metrics"
	"esm/internal/obs"
	"esm/internal/powermodel"
	"esm/internal/replay"
)

// benchScale keeps the full suite in the minutes range; experiments at
// -scale 1.0 are esmbench's job.
var benchScale = map[experiments.Kind]float64{
	experiments.FileServer: 0.25,
	experiments.OLTP:       0.35,
	experiments.DSS:        0.25,
}

var (
	evalMu    sync.Mutex
	evalCache = map[experiments.Kind]*experiments.Eval{}
)

func evaluate(b *testing.B, kind experiments.Kind) *experiments.Eval {
	b.Helper()
	evalMu.Lock()
	defer evalMu.Unlock()
	if ev, ok := evalCache[kind]; ok {
		return ev
	}
	ev := runEval(b, kind)
	evalCache[kind] = ev
	return ev
}

func runEval(b *testing.B, kind experiments.Kind) *experiments.Eval {
	b.Helper()
	scale := benchScale[kind]
	w, err := experiments.Build(kind, scale)
	if err != nil {
		b.Fatal(err)
	}
	ev, err := experiments.Evaluate(w, experiments.PoliciesFor(scale))
	if err != nil {
		b.Fatal(err)
	}
	return ev
}

// saving returns the enclosure-power saving of policy name against the
// no-power-saving baseline, in percent.
func saving(b *testing.B, ev *experiments.Eval, name string) float64 {
	b.Helper()
	base := ev.Result("none")
	r := ev.Result(name)
	if base == nil || r == nil || base.AvgEnclosureW == 0 {
		b.Fatalf("missing results for %q", name)
	}
	return (1 - r.AvgEnclosureW/base.AvgEnclosureW) * 100
}

func reportPower(b *testing.B, ev *experiments.Eval) {
	b.ReportMetric(ev.Result("none").AvgEnclosureW, "none_W")
	b.ReportMetric(ev.Result("esm").AvgEnclosureW, "esm_W")
	b.ReportMetric(saving(b, ev, "esm"), "esm_saving_%")
	b.ReportMetric(saving(b, ev, "pdc"), "pdc_saving_%")
	b.ReportMetric(saving(b, ev, "ddr"), "ddr_saving_%")
	b.ReportMetric(float64(ev.Result("esm").Determinations), "esm_determ")
	b.ReportMetric(float64(ev.Result("ddr").Determinations), "ddr_determ")
}

func BenchmarkFig06PatternMix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, k := range experiments.Kinds() {
			w, err := experiments.Build(k, benchScale[k])
			if err != nil {
				b.Fatal(err)
			}
			m := experiments.PatternMix(w, core.DefaultParams().BreakEven)
			switch k {
			case experiments.FileServer:
				b.ReportMetric(m.Frac(core.P1)*100, "fs_P1_%")
				b.ReportMetric(m.Frac(core.P3)*100, "fs_P3_%")
			case experiments.OLTP:
				b.ReportMetric(m.Frac(core.P3)*100, "oltp_P3_%")
				b.ReportMetric(m.Frac(core.P1)*100, "oltp_P1_%")
			case experiments.DSS:
				b.ReportMetric(m.Frac(core.P1)*100, "dss_P1_%")
				b.ReportMetric(m.Frac(core.P2)*100, "dss_P2_%")
			}
		}
	}
}

func BenchmarkFig08FileServerPower(b *testing.B) {
	var ev *experiments.Eval
	for i := 0; i < b.N; i++ {
		ev = runEval(b, experiments.FileServer)
	}
	evalMu.Lock()
	evalCache[experiments.FileServer] = ev
	evalMu.Unlock()
	reportPower(b, ev)
}

func BenchmarkFig09FileServerResponse(b *testing.B) {
	var ev *experiments.Eval
	for i := 0; i < b.N; i++ {
		ev = evaluate(b, experiments.FileServer)
	}
	b.ReportMetric(float64(ev.Result("none").Resp.Mean().Microseconds())/1000, "none_ms")
	b.ReportMetric(float64(ev.Result("esm").Resp.Mean().Microseconds())/1000, "esm_ms")
	b.ReportMetric(float64(ev.Result("pdc").Resp.Mean().Microseconds())/1000, "pdc_ms")
	b.ReportMetric(float64(ev.Result("ddr").Resp.Mean().Microseconds())/1000, "ddr_ms")
}

func BenchmarkFig10FileServerMigration(b *testing.B) {
	var ev *experiments.Eval
	for i := 0; i < b.N; i++ {
		ev = evaluate(b, experiments.FileServer)
	}
	b.ReportMetric(float64(ev.Result("esm").Storage.MigratedBytes)/(1<<30), "esm_GB")
	b.ReportMetric(float64(ev.Result("pdc").Storage.MigratedBytes)/(1<<30), "pdc_GB")
	b.ReportMetric(float64(ev.Result("ddr").Storage.MigratedBytes)/(1<<30), "ddr_GB")
}

func BenchmarkFig11TPCCPower(b *testing.B) {
	var ev *experiments.Eval
	for i := 0; i < b.N; i++ {
		ev = runEval(b, experiments.OLTP)
	}
	evalMu.Lock()
	evalCache[experiments.OLTP] = ev
	evalMu.Unlock()
	reportPower(b, ev)
}

func BenchmarkFig12TPCCThroughput(b *testing.B) {
	var ev *experiments.Eval
	for i := 0; i < b.N; i++ {
		ev = evaluate(b, experiments.OLTP)
	}
	base := ev.Result("none")
	for _, name := range []string{"esm", "pdc", "ddr"} {
		r := ev.Result(name)
		tpmc := metrics.DerivedThroughput(ev.Workload.BaseThroughput, base.Resp.ReadMean(), r.Resp.ReadMean())
		b.ReportMetric(tpmc, name+"_tpmC")
	}
	b.ReportMetric(ev.Workload.BaseThroughput, "none_tpmC")
}

func BenchmarkFig13TPCCMigration(b *testing.B) {
	var ev *experiments.Eval
	for i := 0; i < b.N; i++ {
		ev = evaluate(b, experiments.OLTP)
	}
	b.ReportMetric(float64(ev.Result("esm").Storage.MigratedBytes)/(1<<30), "esm_GB")
	b.ReportMetric(float64(ev.Result("pdc").Storage.MigratedBytes)/(1<<30), "pdc_GB")
	b.ReportMetric(float64(ev.Result("ddr").Storage.MigratedBytes)/(1<<30), "ddr_GB")
}

func BenchmarkFig14TPCHPower(b *testing.B) {
	var ev *experiments.Eval
	for i := 0; i < b.N; i++ {
		ev = runEval(b, experiments.DSS)
	}
	evalMu.Lock()
	evalCache[experiments.DSS] = ev
	evalMu.Unlock()
	reportPower(b, ev)
}

func BenchmarkFig15TPCHQueryResponse(b *testing.B) {
	var ev *experiments.Eval
	for i := 0; i < b.N; i++ {
		ev = evaluate(b, experiments.DSS)
	}
	base := ev.Result("none")
	baseWin := map[string]time.Duration{}
	for _, wr := range base.Windows {
		baseWin[wr.Name] = wr.ReadSum
	}
	qOrig := map[string]time.Duration{}
	for _, w := range ev.Workload.Windows {
		qOrig[w.Name] = w.End - w.Start
	}
	for _, name := range []string{"esm", "pdc", "ddr"} {
		r := ev.Result(name)
		for _, wr := range r.Windows {
			switch wr.Name {
			case "Q2", "Q7", "Q21":
				q := metrics.DerivedQueryResponse(qOrig[wr.Name], wr.ReadSum, baseWin[wr.Name])
				b.ReportMetric(q.Seconds(), name+"_"+wr.Name+"_s")
			}
		}
	}
}

func BenchmarkFig16TPCHMigration(b *testing.B) {
	var ev *experiments.Eval
	for i := 0; i < b.N; i++ {
		ev = evaluate(b, experiments.DSS)
	}
	b.ReportMetric(float64(ev.Result("esm").Storage.MigratedBytes)/(1<<30), "esm_GB")
	b.ReportMetric(float64(ev.Result("pdc").Storage.MigratedBytes)/(1<<30), "pdc_GB")
	b.ReportMetric(float64(ev.Result("ddr").Storage.MigratedBytes)/(1<<30), "ddr_GB")
}

func reportIntervals(b *testing.B, ev *experiments.Eval) {
	be := core.DefaultParams().BreakEven
	for _, name := range []string{"none", "esm", "pdc", "ddr"} {
		r := ev.Result(name)
		b.ReportMetric(metrics.CumulativeAbove(r.Monitor, be).Hours(), name+"_h")
	}
}

func BenchmarkFig17FileServerIntervals(b *testing.B) {
	var ev *experiments.Eval
	for i := 0; i < b.N; i++ {
		ev = evaluate(b, experiments.FileServer)
	}
	reportIntervals(b, ev)
}

func BenchmarkFig18TPCCIntervals(b *testing.B) {
	var ev *experiments.Eval
	for i := 0; i < b.N; i++ {
		ev = evaluate(b, experiments.OLTP)
	}
	reportIntervals(b, ev)
}

func BenchmarkFig19TPCHIntervals(b *testing.B) {
	var ev *experiments.Eval
	for i := 0; i < b.N; i++ {
		ev = evaluate(b, experiments.DSS)
	}
	reportIntervals(b, ev)
}

// BenchmarkTableIIParameters audits the Table II constants each run; it
// exists so the parameter set appears in every benchmark report.
func BenchmarkTableIIParameters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := core.DefaultParams()
		pw := powermodel.DefaultParams()
		if p.BreakEven != 52*time.Second {
			b.Fatal("break-even drifted from Table II")
		}
		if d := pw.BreakEven() - 52*time.Second; d < -time.Second || d > time.Second {
			b.Fatal("derived break-even drifted from Table II")
		}
	}
	b.ReportMetric(core.DefaultParams().BreakEven.Seconds(), "break_even_s")
	b.ReportMetric(core.DefaultParams().Alpha, "alpha")
	b.ReportMetric(core.DefaultParams().InitialPeriod.Seconds(), "init_period_s")
}

// BenchmarkTelemetryOverhead measures the cost of the obs layer on the
// replay hot path. "off" replays with a nil recorder, tracer, flight
// recorder and watchdog — every instrumented call site must reduce to
// one nil check — while "sink" adds a JSONL event sink and registry,
// "trace" a live per-I/O span tracer (histograms and energy ledger, no
// span sink), "series" a flight recorder sampling the whole system on
// the power grid, "alerts" a watchdog evaluating three rules on that
// grid, and "provenance" the decision-provenance ledger capturing
// every determination's inputs and the array's triggering context.
// Compare the ns/op figures: the off case must not regress against a
// pre-telemetry baseline.
func BenchmarkTelemetryOverhead(b *testing.B) {
	w, err := experiments.Build(experiments.FileServer, 0.1)
	if err != nil {
		b.Fatal(err)
	}
	replayOnce := func(b *testing.B, rec *obs.Recorder, trc *obs.Tracer, fr *obs.FlightRecorder, wd *obs.Watchdog, prov *obs.Provenance) {
		b.Helper()
		esm, err := core.NewESM(core.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		run := replay.Run{
			Catalog:    w.Catalog,
			Records:    w.EnsureRecords(),
			Placement:  w.Placement,
			Storage:    experiments.StorageFor(w),
			Policy:     esm,
			Duration:   w.Duration,
			ClosedLoop: w.ClosedLoop,
			Recorder:   rec,
			Tracer:     trc,
			Series:     fr,
			Alerts:     wd,
			Provenance: prov,
		}
		if _, err := replay.Execute(run); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			replayOnce(b, nil, nil, nil, nil, nil)
		}
	})
	b.Run("sink", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rec := obs.New(obs.Options{
				Sink:     obs.NewJSONLSink(io.Discard),
				Registry: obs.NewRegistry(),
			})
			replayOnce(b, rec, nil, nil, nil, nil)
			if err := rec.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("trace", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			trc := obs.NewTracer(obs.TracerOptions{Enclosures: experiments.StorageFor(w).Enclosures})
			replayOnce(b, nil, trc, nil, nil, nil)
			if err := trc.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("series", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			replayOnce(b, nil, nil, obs.NewFlightRecorder(obs.FlightOptions{}), nil, nil)
		}
	})
	b.Run("alerts", func(b *testing.B) {
		rules, err := obs.ParseRules([]string{
			"budget:total_energy_j>1e6:for=5m",
			"burn:rate(total_energy_j)>50",
			"resp:resp_p95_us>2e5",
		})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			replayOnce(b, nil, nil, nil, obs.NewWatchdog(obs.WatchdogOptions{Rules: rules}), nil)
		}
	})
	b.Run("provenance", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			replayOnce(b, nil, nil, nil, nil, obs.NewProvenance(obs.ProvenanceOptions{}))
		}
	})
}

// BenchmarkAblationFileServer quantifies each mechanism's contribution
// on the file-server workload: the full method versus variants with
// data placement, preload, or write delay disabled, plus the plain
// spin-down timeout as the no-intelligence floor (the design-choice
// study DESIGN.md §3 calls out).
func BenchmarkAblationFileServer(b *testing.B) {
	var ev *experiments.Eval
	for i := 0; i < b.N; i++ {
		w, err := experiments.Build(experiments.FileServer, benchScale[experiments.FileServer])
		if err != nil {
			b.Fatal(err)
		}
		ev, err = experiments.Evaluate(w, experiments.AblationPolicies())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, name := range []string{"timeout", "esm", "esm-nomigrate", "esm-nopreload", "esm-nowdelay"} {
		b.ReportMetric(saving(b, ev, name), name+"_saving_%")
	}
}
