// Custom policy: shows how to implement the policy.Policy interface and
// evaluate a home-grown power-saving method inside the replay harness.
//
// The example policy, "hinted", is a toy application-collaborative
// method: the application tags its data items (here: by name prefix) and
// the policy simply spins down every enclosure that holds no "hot"
// items — no monitoring, no adaptation. Comparing it with the paper's
// method shows what the run-time classification machinery buys: the
// hinted policy needs out-of-band knowledge and still cannot adapt when
// behaviour shifts.
//
// Run with:
//
//	go run ./examples/custom_policy
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"esm/internal/core"
	"esm/internal/policy"
	"esm/internal/replay"
	"esm/internal/storage"
	"esm/internal/trace"
	"esm/internal/workload"
)

// hinted spins down every enclosure that stores no item whose name marks
// it as hot. It implements policy.Policy.
type hinted struct {
	hotPrefix string
}

func (h *hinted) Name() string { return "hinted" }

// Init inspects the catalog once: enclosures holding a hot-prefixed item
// keep power-off disabled, all others may spin down.
func (h *hinted) Init(ctx *policy.Context) {
	hotEnc := make([]bool, ctx.Array.Enclosures())
	for _, id := range ctx.Catalog.IDs() {
		if strings.HasPrefix(ctx.Catalog.Name(id), h.hotPrefix) {
			hotEnc[ctx.Array.ItemEnclosure(id)] = true
		}
	}
	for e, hot := range hotEnc {
		ctx.Array.SetSpinDownEnabled(e, !hot)
	}
}

func (h *hinted) OnLogical(trace.LogicalRecord) {}

func (h *hinted) OnPhysical(trace.PhysicalRecord) {}

func (h *hinted) OnPower(int, time.Duration, bool) {}

func (h *hinted) Finish(time.Duration) {}

func (h *hinted) Determinations() int64 { return 1 }

func main() {
	// Keep the steady (hot) items on two of the four enclosures so a
	// placement-aware policy has something to exploit.
	cfg := workload.DefaultSyntheticConfig()
	cfg.SteadyItems = 2
	w, err := workload.GenerateSynthetic(cfg)
	if err != nil {
		log.Fatal(err)
	}

	run := replay.Run{
		Catalog:    w.Catalog,
		Placement:  w.Placement,
		Storage:    storage.DefaultConfig(w.Enclosures),
		Duration:   w.Duration,
		ClosedLoop: w.ClosedLoop,
	}

	policies := []policy.Policy{
		policy.NoPowerSaving{},
		&hinted{hotPrefix: "steady"},
	}
	if esm, err := core.NewESM(core.DefaultParams()); err == nil {
		policies = append(policies, esm)
	}

	fmt.Printf("%-10s %10s %14s %10s\n", "policy", "avg W", "response", "spin-ups")
	var baseW float64
	for _, pol := range policies {
		run.Policy = pol
		run.Source = w.Source()
		res, err := replay.Execute(run)
		if err != nil {
			log.Fatal(err)
		}
		if baseW == 0 {
			baseW = res.AvgEnclosureW
		}
		fmt.Printf("%-10s %10.1f %14v %10d   (%.1f%% saving)\n",
			res.PolicyName, res.AvgEnclosureW,
			res.Resp.Mean().Round(10*time.Microsecond), res.SpinUps,
			(1-res.AvgEnclosureW/baseW)*100)
	}
}
