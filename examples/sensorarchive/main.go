// Sensor-archive scenario: the data-intensive application class the
// paper's introduction opens with, beyond the three it evaluates. An
// archive is the method's best case — almost everything is P0/P1 once
// the continuously appended active segments (P3) are consolidated —
// and the run shows the full pipeline: classification, hot/cold
// separation, consolidation, write delay for the compaction output and
// preload for hot analytic inputs.
//
// Run with:
//
//	go run ./examples/sensorarchive
package main

import (
	"fmt"
	"log"
	"time"

	"esm/internal/core"
	"esm/internal/monitor"
	"esm/internal/policy"
	"esm/internal/replay"
	"esm/internal/storage"
	"esm/internal/workload"
)

func main() {
	w, err := workload.GenerateSensorArchive(workload.DefaultSensorConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sensor archive: %d records, %d items on %d enclosures, %v\n",
		len(w.EnsureRecords()), w.Catalog.Len(), w.Enclosures, w.Duration)

	// The Fig. 6-style pattern mix of this application, fed straight off
	// the streaming trace source.
	mon := monitor.NewAppMonitor(w.Catalog.Len(), core.DefaultParams().BreakEven)
	src := w.Source()
	for {
		rec, ok := src.Next()
		if !ok {
			break
		}
		mon.Record(rec)
	}
	if err := src.Err(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("patterns: %s\n\n", core.MixOf(mon.EndPeriod(w.Duration)))

	run := replay.Run{
		Catalog:    w.Catalog,
		Placement:  w.Placement,
		Storage:    storage.DefaultConfig(w.Enclosures),
		Duration:   w.Duration,
		ClosedLoop: w.ClosedLoop,
	}

	fmt.Printf("%-10s %10s %9s %14s %10s\n", "policy", "avg W", "saving", "response", "off-time")
	var baseW float64
	pols := []policy.Policy{policy.NoPowerSaving{}, policy.FixedTimeout{}}
	if esm, err := core.NewESM(core.DefaultParams()); err == nil {
		pols = append(pols, esm)
	}
	for _, pol := range pols {
		run.Policy = pol
		run.Source = w.Source()
		res, err := replay.Execute(run)
		if err != nil {
			log.Fatal(err)
		}
		if baseW == 0 {
			baseW = res.AvgEnclosureW
		}
		var off float64
		for _, m := range res.StateMix {
			off += m.Off / float64(len(res.StateMix))
		}
		fmt.Printf("%-10s %10.1f %8.1f%% %14v %9.1f%%\n",
			res.PolicyName, res.AvgEnclosureW, (1-res.AvgEnclosureW/baseW)*100,
			res.Resp.Mean().Round(10*time.Microsecond), off*100)
	}
}
