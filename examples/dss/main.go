// DSS scenario: the paper's TPC-H workload. Replays Q1–Q22 under every
// policy and prints power (Fig. 14), the derived per-query response
// times for Q2/Q7/Q21 (Fig. 15) and migration volume (Fig. 16). The
// long idle stretches between scans make every method save substantial
// power here; the differences show up in query response time, where the
// physical-only DDR pays repeated spin-up penalties at scan starts.
//
// Run with:
//
//	go run ./examples/dss [-scale 0.35]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"esm/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 0.35, "time-scale factor (1.0 = the paper's 6 hours at SF 100)")
	flag.Parse()

	w, err := experiments.Build(experiments.DSS, *scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dss: %d records, %d items on %d enclosures, %v, %d queries\n",
		len(w.EnsureRecords()), w.Catalog.Len(), w.Enclosures, w.Duration, len(w.Windows))

	ev, err := experiments.Evaluate(w, experiments.PoliciesFor(*scale))
	if err != nil {
		log.Fatal(err)
	}
	experiments.PowerTable("TPC-H power consumption (Fig. 14)", ev).Fprint(os.Stdout)
	experiments.QueryResponseTable(ev, []string{"Q2", "Q7", "Q21"}).Fprint(os.Stdout)
	experiments.MigrationTable("TPC-H migrated data (Fig. 16)", ev).Fprint(os.Stdout)
}
