// Quickstart: generate a small synthetic workload, replay it twice —
// once without power saving and once under the paper's energy-efficient
// storage management — and print the energy saving.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"esm/internal/core"
	"esm/internal/policy"
	"esm/internal/replay"
	"esm/internal/storage"
	"esm/internal/workload"
)

func main() {
	// A one-hour mix: a few continuously hit items (P3), a dozen bursty
	// read-mostly items (P1) and some idle data (P0), on 4 enclosures.
	w, err := workload.GenerateSynthetic(workload.DefaultSyntheticConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d records, %d items, %d enclosures, %v\n",
		len(w.EnsureRecords()), w.Catalog.Len(), w.Enclosures, w.Duration)

	// A trace source is single-use: give every replay its own.
	run := replay.Run{
		Catalog:    w.Catalog,
		Placement:  w.Placement,
		Storage:    storage.DefaultConfig(w.Enclosures),
		Duration:   w.Duration,
		ClosedLoop: w.ClosedLoop,
	}

	run.Policy = policy.NoPowerSaving{}
	run.Source = w.Source()
	base, err := replay.Execute(run)
	if err != nil {
		log.Fatal(err)
	}

	esm, err := core.NewESM(core.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	run.Policy = esm
	run.Source = w.Source()
	managed, err := replay.Execute(run)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-22s %10s %12s %14s\n", "policy", "avg W", "response", "migrated")
	for _, r := range []*replay.Result{base, managed} {
		fmt.Printf("%-22s %10.1f %12v %11.2f GB\n",
			r.PolicyName, r.AvgEnclosureW, r.Resp.Mean().Round(10*time.Microsecond),
			float64(r.Storage.MigratedBytes)/(1<<30))
	}
	saving := (1 - managed.AvgEnclosureW/base.AvgEnclosureW) * 100
	fmt.Printf("\nenclosure power saving: %.1f%% (with %d placement determinations)\n",
		saving, managed.Determinations)
}
