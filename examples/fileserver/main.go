// File-server scenario: the paper's first evaluation workload. Replays
// the MSR-like file-server trace under every policy in the comparison
// set and prints the Fig. 8/9/10 tables plus the Fig. 17 interval
// analysis.
//
// Run with:
//
//	go run ./examples/fileserver [-scale 0.5]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"esm/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 0.25, "time-scale factor (1.0 = the paper's 6 hours)")
	flag.Parse()

	w, err := experiments.Build(experiments.FileServer, *scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("file server: %d records, %d items (files) on %d enclosures, %v\n",
		len(w.EnsureRecords()), w.Catalog.Len(), w.Enclosures, w.Duration)

	mix := experiments.PatternMix(w, 52e9)
	fmt.Printf("logical I/O patterns: %s\n\n", mix)

	ev, err := experiments.Evaluate(w, experiments.PoliciesFor(*scale))
	if err != nil {
		log.Fatal(err)
	}
	experiments.PowerTable("File Server power consumption (Fig. 8)", ev).Fprint(os.Stdout)
	experiments.ResponseTable("File Server I/O response time (Fig. 9)", ev).Fprint(os.Stdout)
	experiments.MigrationTable("File Server migrated data (Fig. 10)", ev).Fprint(os.Stdout)
	experiments.IntervalTable("File Server I/O intervals (Fig. 17)", ev, experiments.DefaultIntervalThresholds()).Fprint(os.Stdout)
}
