// OLTP scenario: the paper's TPC-C workload. Replays the OLTP trace
// under every policy and prints power (Fig. 11), the derived transaction
// throughput (Fig. 12) and migration volume (Fig. 13). Note how the
// proposed method keeps most enclosures hot (the workload is genuinely
// busy) yet still finds cold ones, while DDR finds nothing to do because
// every enclosure's IOPS exceeds its LowTH.
//
// Run with:
//
//	go run ./examples/oltp [-scale 0.35]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"esm/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 0.35, "time-scale factor (1.0 = the paper's 1.8 hours)")
	flag.Parse()

	w, err := experiments.Build(experiments.OLTP, *scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("oltp: %d records, %d items (table partitions + log) on %d enclosures, %v\n",
		len(w.EnsureRecords()), w.Catalog.Len(), w.Enclosures, w.Duration)

	ev, err := experiments.Evaluate(w, experiments.PoliciesFor(*scale))
	if err != nil {
		log.Fatal(err)
	}
	experiments.PowerTable("TPC-C power consumption (Fig. 11)", ev).Fprint(os.Stdout)
	experiments.ThroughputTable(ev).Fprint(os.Stdout)
	experiments.MigrationTable("TPC-C migrated data (Fig. 13)", ev).Fprint(os.Stdout)
}
